"""The paper's contribution: classification, stability, transformation,
boundedness, and query compilation for linear recursive formulas.
"""

from .algebra import (algebraic_answers, atom_expression,
                      conjunction_expression, exit_expression,
                      term_expression)
from .advisor import QueryCapability, advise, capability_table
from .bindings import (Adornment, BindingSequence, adornment_from_string,
                       adornment_to_string, all_adornments, binding_sequence,
                       body_adornment, determined_closure)
from .classes import (Boundedness, ComponentClass, FormulaClass,
                      combine_component_classes)
from .classifier import Classification, ComponentAnalysis, classify
from .compile import (CompiledFormula, CycleSpec, StableCompilation,
                      Strategy, compile_query, compile_stable)
from .lint import Diagnostic, lint_report, lint_text
from .minimize import find_homomorphism, minimize_rule, minimize_system
from .plans import (Branches, Exists, JoinChain, PlanNode, Power, Product,
                    Rel, Select, Steps, UnionOverK, relation_names, render)
from .report import classification_table, formula_dossier, text_table
from .stability import (StabilityReport, is_semantically_stable,
                        is_syntactically_stable, stability_report)
from .transform import StableTransformation, to_nonrecursive, to_stable
from .witness import freeze_body, witness_database, witness_rank

__all__ = [
    "Adornment", "BindingSequence", "Boundedness", "Branches",
    "Classification", "CompiledFormula", "ComponentAnalysis",
    "ComponentClass", "CycleSpec", "Exists", "FormulaClass", "JoinChain",
    "PlanNode", "Power", "Product", "Rel", "Select", "StabilityReport",
    "StableCompilation", "StableTransformation", "Steps", "Strategy",
    "UnionOverK", "adornment_from_string", "adornment_to_string",
    "all_adornments", "binding_sequence", "body_adornment",
    "classification_table", "classify", "combine_component_classes",
    "compile_query", "compile_stable", "determined_closure",
    "formula_dossier", "is_semantically_stable",
    "is_syntactically_stable", "relation_names", "render",
    "stability_report", "text_table", "to_nonrecursive", "to_stable",
    "freeze_body", "witness_database", "witness_rank",
    "algebraic_answers", "atom_expression", "conjunction_expression",
    "exit_expression", "term_expression",
    "QueryCapability", "advise", "capability_table",
    "find_homomorphism", "minimize_rule", "minimize_system",
    "Diagnostic", "lint_report", "lint_text",
]
