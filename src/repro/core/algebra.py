"""Compiled stable formulas as executable relational algebra.

The engines in :mod:`repro.engine` evaluate compiled strategies
tuple-at-a-time; this module shows that for strongly stable formulas
(and transformable ones, after unfolding) the compiled formula
``σE, ∪_k [{σR_i^k} ⋈ E ⋈ {R_j^k}]`` is *literally* relational
algebra: :func:`term_expression` builds, for a query and a depth k,
a pure :mod:`repro.ra.expr` tree whose evaluation is exactly the
depth-k answer set, and :func:`algebraic_answers` unions the terms.

The pure-tree formulation owns no fixpoint machinery — the iteration
horizon is explicit (the engines own the sound termination test) —
but every term is closed algebra over the EDB, which is the paper's
notion of a *compiled formula*: "query processing can be performed
directly on the compiled formulas without performing resolutions at
run time".

Column conventions: exit columns are ``e0..e{n-1}``; answer columns
``a0..a{n-1}``; chain-step relations use ``s``/``t`` locally.
"""

from __future__ import annotations

from functools import reduce

from ..datalog.atoms import Atom
from ..datalog.terms import Constant, Variable
from ..ra.database import Database
from ..ra.expr import (EqualColumns, Expr, Extend, Join, Literal,
                       Projection, Renaming, Scan, Selection, Semijoin,
                       UnionOp, evaluate)
from ..ra.relation import Relation
from .compile import CycleSpec, StableCompilation


def atom_expression(body_atom: Atom) -> Expr:
    """One atom as algebra: scan, bind constants, equate repeats.

    The result has one column per *distinct* variable, named after it.

    >>> from ..datalog.parser import parse_atom
    >>> db = Database.from_dict({"A": [("a", "a"), ("a", "b")]})
    >>> rel = evaluate(atom_expression(parse_atom("A(x, x)")), db)
    >>> rel.columns, sorted(rel.rows)
    (('x',), [('a',)])
    """
    columns = tuple(f"_{i}" for i in range(body_atom.arity))
    expr: Expr = Scan(body_atom.predicate, columns)
    first_of: dict[Variable, int] = {}
    for index, term in enumerate(body_atom.args):
        if isinstance(term, Constant):
            expr = Selection(expr, ((columns[index], term.value),))
        elif term in first_of:
            expr = EqualColumns(expr, columns[first_of[term]],
                                columns[index])
        else:
            first_of[term] = index
    ordered = sorted(first_of, key=lambda v: first_of[v])
    expr = Projection(expr, tuple(columns[first_of[v]] for v in ordered))
    return Renaming(expr, tuple(
        (columns[first_of[v]], v.name) for v in ordered))


def conjunction_expression(atoms: tuple[Atom, ...],
                           out_vars: tuple[Variable, ...]) -> Expr:
    """A conjunctive query as a natural-join tree over *atoms*.

    Shared variables share column names, so the natural joins realise
    the unification; the result is projected onto *out_vars* (repeated
    output variables are duplicated with :class:`Extend`).
    """
    if not atoms:
        raise ValueError("cannot build algebra for an empty body")
    joined: Expr = reduce(Join, (atom_expression(a) for a in atoms))
    out_columns: list[str] = []
    seen: dict[str, int] = {}
    for position, var in enumerate(out_vars):
        if var.name in seen:
            copy = f"{var.name}#{position}"
            joined = Extend(joined, var.name, copy)
            out_columns.append(copy)
        else:
            seen[var.name] = position
            out_columns.append(var.name)
    return Projection(joined, tuple(out_columns))


def exit_expression(compilation: StableCompilation) -> Expr:
    """The exit relation ``E`` with columns ``e0..e{n-1}``.

    Unions every exit rule's body as a conjunctive query projected
    onto its head arguments.
    """
    system = compilation.system
    n = system.dimension
    targets = tuple(f"e{i}" for i in range(n))
    parts: list[Expr] = []
    for exit_rule in system.exits:
        head_vars = tuple(t for t in exit_rule.head.args)
        body = conjunction_expression(tuple(exit_rule.body), head_vars)
        # rename the projected head columns positionally to e0..e{n-1}
        produced = _projection_columns(exit_rule)
        parts.append(Renaming(body, tuple(zip(produced, targets))))
    return reduce(UnionOp, parts)


def _projection_columns(exit_rule) -> tuple[str, ...]:
    """Output column names produced by conjunction_expression for the
    exit head (repeats become ``name#position``)."""
    seen: set[str] = set()
    out: list[str] = []
    for position, term in enumerate(exit_rule.head.args):
        name = term.name
        if name in seen:
            out.append(f"{name}#{position}")
        else:
            seen.add(name)
            out.append(name)
    return tuple(out)


def chain_step_expression(spec: CycleSpec, source: str,
                          target: str) -> Expr:
    """One step of a rotational cycle: columns (source, target)."""
    body = conjunction_expression(
        spec.atoms, (spec.head_var, spec.body_var))
    return Renaming(body, ((spec.head_var.name, source),
                           (spec.body_var.name, target)))


def filter_expression(spec: CycleSpec, column: str) -> Expr:
    """The decoration filter of a permutational cycle, one column."""
    body = conjunction_expression(spec.atoms, (spec.head_var,))
    return Renaming(body, ((spec.head_var.name, column),))


def _forward_frontier(spec: CycleSpec, constant: object,
                      depth: int) -> Expr:
    """``σ_c R^k``: the k-step frontier of a bound position."""
    column = f"e{spec.position}"
    expr: Expr = Literal(Relation((column,), [(constant,)]))
    if spec.is_permutational:
        if spec.atoms and depth >= 1:  # the filter is idempotent
            expr = Semijoin(expr, filter_expression(spec, column))
        return expr
    for _ in range(depth):
        stepped = Join(Renaming(expr, ((column, "s"),)),
                       chain_step_expression(spec, "s", "t"))
        expr = Renaming(Projection(stepped, ("t",)), (("t", column),))
    return expr


def _backward_chain(spec: CycleSpec, depth: int) -> Expr:
    """``R^k`` read backward: columns (a{j}, e{j}), k ≥ 1."""
    answer = f"a{spec.position}"
    exit_col = f"e{spec.position}"
    expr = chain_step_expression(spec, answer, "cur")
    for _ in range(depth - 1):
        stepped = Join(expr, chain_step_expression(spec, "cur", "nxt"))
        expr = Renaming(Projection(stepped, (answer, "nxt")),
                        (("nxt", "cur"),))
    return Renaming(expr, (("cur", exit_col),))


def term_expression(compilation: StableCompilation,
                    pattern: tuple, depth: int) -> Expr:
    """The depth-*depth* term of the compiled formula, as pure algebra.

    *pattern* is the query pattern (constants at bound positions, None
    at free ones).  The result has columns ``a0..a{n-1}``.
    """
    system = compilation.system
    n = system.dimension
    expr = exit_expression(compilation)

    if depth >= 1 and compilation.free_atoms:
        gate_vars = tuple(compilation.free_atoms[0].variables[:1])
        gate = conjunction_expression(compilation.free_atoms,
                                      gate_vars or ())
        gate = Renaming(gate, tuple(
            (v.name, f"_gate{i}") for i, v in enumerate(gate_vars)))
        expr = Semijoin(expr, gate)

    bound = [i for i, value in enumerate(pattern) if value is not None]
    free = [i for i in range(n) if i not in bound]

    for position in bound:
        expr = Semijoin(expr, _forward_frontier(
            compilation.spec_at(position), pattern[position], depth))

    answer_columns: dict[int, str] = {}
    for position in free:
        spec = compilation.spec_at(position)
        exit_col = f"e{position}"
        if spec.is_permutational:
            if spec.atoms and depth >= 1:
                expr = Semijoin(expr,
                                filter_expression(spec, exit_col))
            answer_columns[position] = exit_col
        elif depth == 0:
            answer_columns[position] = exit_col
        else:
            expr = Join(expr, _backward_chain(spec, depth))
            answer_columns[position] = f"a{position}"

    # Assemble a0..a{n-1}: free positions from their chain columns,
    # bound positions as constant literals (gated by non-emptiness).
    if free:
        expr = Projection(expr, tuple(
            answer_columns[position] for position in free))
        expr = Renaming(expr, tuple(
            (answer_columns[position], f"a{position}")
            for position in free))
        for position in bound:
            expr = Join(expr, Literal(Relation(
                (f"a{position}",), [(pattern[position],)])))
    else:
        full = Literal(Relation(
            tuple(f"a{i}" for i in range(n)),
            [tuple(pattern)]))
        expr = Semijoin(full, expr)
    return Projection(expr, tuple(f"a{i}" for i in range(n)))


def algebraic_answers(compilation: StableCompilation,
                      pattern: tuple, database: Database,
                      max_depth: int) -> frozenset[tuple]:
    """∪_{k=0}^{max_depth} of the term expressions, evaluated.

    The horizon is explicit: this function demonstrates that the
    compiled formula is closed algebra; the *engines* own the sound
    fixpoint cut-off.  A horizon of ``|active domain| × dimension`` is
    always enough for acyclic chain data.
    """
    answers: set[tuple] = set()
    for depth in range(max_depth + 1):
        term = term_expression(compilation, pattern, depth)
        answers |= evaluate(term, database).rows
    return frozenset(answers)
