"""The paper's class taxonomy (section 3) as value objects.

Two granularities:

* :class:`ComponentClass` — the class of one non-trivial connected
  component of the I-graph (the paper's analysis, Theorem 12, is
  per-component);
* :class:`FormulaClass` — the class of the whole formula, i.e. of the
  disjoint combination of its components:

  - a single kind of Ai (over any number of components) keeps that
    label; different Ai kinds combine to A5;
  - a single kind among B, C, D, E keeps that label (Theorem 6 and
    friends treat such combinations uniformly);
  - anything else is F (mixed).

:class:`Boundedness` is the tri-state the boundedness analysis reports:
the paper decides boundedness for every class except dependent
components containing permutational patterns, which we honestly label
UNKNOWN (Ioannidis's theorem, as the paper states it, presupposes no
permutational pattern).
"""

from __future__ import annotations

import enum


class ComponentClass(enum.Enum):
    """Class of one non-trivial I-graph component."""

    A1 = "A1"  #: independent one-directional unit rotational cycle
    A2 = "A2"  #: independent one-directional unit permutational cycle
    A3 = "A3"  #: independent one-directional non-unit rotational cycle
    A4 = "A4"  #: independent one-directional non-unit permutational cycle
    B = "B"    #: independent multi-directional cycle of weight 0
    C = "C"    #: independent multi-directional cycle of non-zero weight
    D = "D"    #: non-trivial component with no non-trivial cycle
    E = "E"    #: dependent cycles

    @property
    def is_one_directional(self) -> bool:
        """True for the A-family (independent one-directional cycles)."""
        return self in _A_CLASSES

    @property
    def is_unit(self) -> bool:
        """True for unit cycles (A1, A2) — the strongly stable shapes."""
        return self in (ComponentClass.A1, ComponentClass.A2)

    @property
    def is_permutational(self) -> bool:
        """True for pure-directed independent cycles (A2, A4)."""
        return self in (ComponentClass.A2, ComponentClass.A4)

    def __str__(self) -> str:
        return self.value


_A_CLASSES = frozenset({ComponentClass.A1, ComponentClass.A2,
                        ComponentClass.A3, ComponentClass.A4})


class FormulaClass(enum.Enum):
    """Class of a whole formula (disjoint combination of components)."""

    A1 = "A1"
    A2 = "A2"
    A3 = "A3"
    A4 = "A4"
    A5 = "A5"  #: disjoint combination of different Ai's
    B = "B"
    C = "C"
    D = "D"
    E = "E"
    F = "F"    #: mixed: disjoint combination of different classes

    @property
    def is_one_directional(self) -> bool:
        """True when every component is an independent one-directional
        cycle (classes A1–A5) — exactly the transformable formulas
        (Corollary 3)."""
        return self in (FormulaClass.A1, FormulaClass.A2, FormulaClass.A3,
                        FormulaClass.A4, FormulaClass.A5)

    def __str__(self) -> str:
        return self.value


def combine_component_classes(
        kinds: tuple[ComponentClass, ...]) -> FormulaClass:
    """The formula class of a disjoint combination of component classes.

    >>> combine_component_classes((ComponentClass.A1, ComponentClass.A1))
    <FormulaClass.A1: 'A1'>
    >>> combine_component_classes((ComponentClass.A1, ComponentClass.A2))
    <FormulaClass.A5: 'A5'>
    >>> combine_component_classes((ComponentClass.A1, ComponentClass.D))
    <FormulaClass.F: 'F'>
    """
    if not kinds:
        raise ValueError("a recursive formula has at least one "
                         "non-trivial component")
    distinct = frozenset(kinds)
    if len(distinct) == 1:
        return FormulaClass(next(iter(distinct)).value)
    if distinct <= _A_CLASSES:
        return FormulaClass.A5
    return FormulaClass.F


class Boundedness(enum.Enum):
    """Tri-state outcome of the boundedness analysis."""

    BOUNDED = "bounded"
    UNBOUNDED = "unbounded"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value
