"""Redundant-atom elimination: conjunctive-query minimisation of rules.

The paper's companion work ([Han 87], "Handling Redundancy in
Recursive Query Processing") motivates removing redundant subgoals
before compilation.  This module implements the classic
Chandra–Merlin-style minimisation for our restricted setting: a body
atom is *redundant* when a homomorphism maps the full body into the
body without it, fixing the variables whose bindings matter.

For a recursive rule we protect the head variables **and** the
recursive atom's variables (the homomorphism must be the identity on
them): folding the recursive call itself, or re-routing the values it
receives, would change the recursion — with that protection, dropping
an atom preserves the per-expansion semantics and therefore the
fixpoint (each expansion's body is the k-fold composition of the
rule body, and the homomorphisms compose levelwise).

Exit rules only need their head variables protected.

Minimisation can only shrink the I-graph: decorations disappear, and
parallel undirected paths collapse — classification never gets worse.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.atoms import Atom
from ..datalog.program import RecursionSystem
from ..datalog.rules import RecursiveRule, Rule
from ..datalog.terms import Constant, Term, Variable


def find_homomorphism(source: tuple[Atom, ...],
                      target: tuple[Atom, ...],
                      fixed: frozenset[Variable]
                      ) -> dict[Variable, Term] | None:
    """A variable mapping sending every *source* atom into *target*.

    The mapping is the identity on *fixed* variables; constants map to
    themselves.  Returns None when no homomorphism exists.

    >>> from ..datalog.parser import parse_atom
    >>> hom = find_homomorphism(
    ...     (parse_atom("A(x, w)"),), (parse_atom("A(x, z)"),),
    ...     frozenset({Variable("x")}))
    >>> hom[Variable("w")]
    Variable(name='z')
    """
    ordered = sorted(source, key=lambda a: (a.predicate, a.arity))

    def extend(mapping: dict[Variable, Term], atom_args, target_args
               ) -> dict[Variable, Term] | None:
        out = dict(mapping)
        for term, image in zip(atom_args, target_args):
            if isinstance(term, Constant):
                if term != image:
                    return None
                continue
            if term in fixed:
                if image != term:
                    return None
                continue
            known = out.get(term)
            if known is None:
                out[term] = image
            elif known != image:
                return None
        return out

    def search(index: int, mapping: dict[Variable, Term]) -> bool:
        if index == len(ordered):
            search.result = mapping  # type: ignore[attr-defined]
            return True
        atom = ordered[index]
        for candidate in target:
            if (candidate.predicate != atom.predicate
                    or candidate.arity != atom.arity):
                continue
            extended = extend(mapping, atom.args, candidate.args)
            if extended is not None and search(index + 1, extended):
                return True
        return False

    if search(0, {}):
        return search.result  # type: ignore[attr-defined]
    return None


def _minimize_atoms(atoms: tuple[Atom, ...],
                    fixed: frozenset[Variable]) -> tuple[Atom, ...]:
    """Drop atoms one at a time while a folding homomorphism exists."""
    current = list(dict.fromkeys(atoms))  # exact duplicates first
    changed = True
    while changed:
        changed = False
        for index, candidate in enumerate(current):
            rest = tuple(current[:index] + current[index + 1:])
            if not rest:
                continue
            if find_homomorphism(tuple(current), rest,
                                 fixed) is not None:
                del current[index]
                changed = True
                break
    return tuple(current)


def minimize_rule(rule: Rule,
                  protect: Iterable[Variable] = ()) -> Rule:
    """A minimal equivalent rule (recursive-aware).

    For recursive rules the recursive atom and its variables are
    protected; for non-recursive rules only the head variables are.

    >>> from ..datalog.parser import parse_rule
    >>> str(minimize_rule(parse_rule(
    ...     "P(x, y) :- A(x, z), A(x, w), P(z, y).")))
    'P(x, y) :- A(x, z) ∧ P(z, y).'
    """
    fixed: set[Variable] = set(rule.head.variables)
    fixed.update(protect)
    recursive_atoms = tuple(a for a in rule.body
                            if a.predicate == rule.head.predicate)
    for recursive_atom in recursive_atoms:
        fixed.update(recursive_atom.variables)
    plain = tuple(a for a in rule.body
                  if a.predicate != rule.head.predicate)
    minimised = set(_minimize_atoms(plain, frozenset(fixed)))
    # rebuild in original body order; literal duplicates keep one copy
    new_body: list[Atom] = []
    for body_atom in rule.body:
        if body_atom.predicate == rule.head.predicate:
            new_body.append(body_atom)
        elif body_atom in minimised and body_atom not in new_body:
            new_body.append(body_atom)
    return Rule(rule.head, tuple(new_body))


def minimize_system(system: RecursionSystem) -> RecursionSystem:
    """Minimise the recursive rule and every exit rule of *system*."""
    recursive = minimize_rule(system.recursive.rule)
    exits = tuple(minimize_rule(exit_rule)
                  for exit_rule in system.exits)
    return RecursionSystem(RecursiveRule(recursive, strict=False), exits)
