"""Benchmark harness: engine runs, agreement checks, table rows."""

from .harness import (ENGINES, POINT_HEADERS, EngineRun, ExperimentPoint,
                      run_point)

__all__ = ["ENGINES", "POINT_HEADERS", "EngineRun", "ExperimentPoint",
           "run_point"]
