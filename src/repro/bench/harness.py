"""Experiment harness shared by the benchmark suite.

Runs the three engines on a (system, database, query) triple, collects
answers, statistics and wall-clock, and checks the engines agree — a
benchmark that silently measured wrong answers would be worthless.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..datalog.program import RecursionSystem
from ..engine.compiled import CompiledEngine
from ..engine.naive import NaiveEngine
from ..engine.query import Query
from ..engine.seminaive import SemiNaiveEngine
from ..engine.stats import EvaluationStats
from ..engine.topdown import TopDownEngine
from ..ra.database import Database

ENGINES = {
    "naive": NaiveEngine,
    "semi-naive": SemiNaiveEngine,
    "compiled": CompiledEngine,
    "top-down": TopDownEngine,
}


@dataclass(frozen=True)
class EngineRun:
    """One engine's measurements on one query."""

    engine: str
    answers: frozenset[tuple]
    stats: EvaluationStats
    seconds: float


@dataclass(frozen=True)
class ExperimentPoint:
    """All engines' measurements on one (system, db, query) triple."""

    label: str
    query: Query
    runs: dict[str, EngineRun]

    @property
    def agreed(self) -> bool:
        """Whether every engine produced the same answer set."""
        answer_sets = {run.answers for run in self.runs.values()}
        return len(answer_sets) == 1

    def speedup(self, slow: str = "naive", fast: str = "compiled") -> float:
        """Probe-count ratio between two engines (∞-safe)."""
        slow_probes = self.runs[slow].stats.probes
        fast_probes = max(1, self.runs[fast].stats.probes)
        return slow_probes / fast_probes

    def row(self) -> list[object]:
        """A table row: label, |answers|, probes per engine, agreement."""
        sizes = {name: run.stats.probes for name, run in self.runs.items()}
        count = len(next(iter(self.runs.values())).answers)
        return [self.label, str(self.query), count,
                sizes.get("naive", "-"), sizes.get("semi-naive", "-"),
                sizes.get("compiled", "-"),
                "yes" if self.agreed else "NO"]


def run_point(label: str, system: RecursionSystem, database: Database,
              query: Query,
              engines: tuple[str, ...] = ("naive", "semi-naive",
                                          "compiled")) -> ExperimentPoint:
    """Run the named engines on one triple and package the results."""
    runs: dict[str, EngineRun] = {}
    for name in engines:
        engine = ENGINES[name]()
        stats = EvaluationStats()
        started = time.perf_counter()
        answers = engine.evaluate(system, database, query, stats)
        elapsed = time.perf_counter() - started
        runs[name] = EngineRun(engine=name, answers=answers, stats=stats,
                               seconds=elapsed)
    return ExperimentPoint(label=label, query=query, runs=runs)


POINT_HEADERS = ["workload", "query", "answers", "naive probes",
                 "semi-naive probes", "compiled probes", "agree"]
