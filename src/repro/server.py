"""A monitored HTTP query server over a deductive-database session.

``repro serve program.dl`` turns the reproduction into a long-lived
service built entirely on the stdlib:

* ``POST /query`` — evaluate a query; JSON in
  (``{"query": "P(a, Y)", "engine"?: ..., "workers"?: ...,
  "timeout_s"?: ..., "max_rows"?: ...}``), JSON out (answers, count,
  outcome, epoch, duration, the query's full
  :meth:`~repro.engine.stats.EvaluationStats.to_dict`).  The
  ``answers`` array is rendered straight from the lazy columnar
  :class:`~repro.ra.answers.AnswerSet`: one ``json.dumps`` per
  *distinct* constant (answer columns repeat few distinct values),
  one fragment per row, written in bounded chunks under a
  precomputed ``Content-Length`` — the only point in the service
  where decode is forced, metered by ``repro_decode_seconds``;
* ``POST /facts`` — one write batch
  (``{"add"?: {pred: [rows]}, "remove"?: {pred: [rows]},
  "rules"?: [text]}``) applied atomically as one epoch;
* ``POST /jobs`` (or ``POST /query`` with ``"mode": "async"``) —
  submit the same query document as a background job: the response is
  an immediate ``202`` with a job id, the evaluation runs later on a
  worker thread against the epoch snapshot **pinned at submit time**
  (:mod:`repro.jobs`), so a class-D/E/F fixpoint that outlives any
  HTTP connection still completes and its result survives client
  disconnects until the TTL;
* ``GET /jobs`` / ``GET /jobs/<id>`` — job list / one job's status
  (``queued | running | done | timeout | truncated | error |
  cancelled``) with live progress (rounds completed, rows derived so
  far);
* ``GET /jobs/<id>/result`` — the finished job's answers, streamed
  through the same columnar renderer as a synchronous ``/query``;
* ``DELETE /jobs/<id>`` — cancel: a queued job dies immediately, a
  running one aborts cooperatively at its next round boundary;
* ``GET /metrics`` — the session registry in Prometheus text
  exposition format (database gauges refreshed at scrape time;
  ``--exemplars`` adds query-id exemplars to latency buckets);
* ``GET /healthz`` — liveness (200 + version/uptime/served/epoch/job
  counters);
* ``GET /stats`` — the registry's JSON snapshot plus server info;
* ``GET /debug/traces`` / ``GET /debug/traces/<query_id>`` — the
  flight recorder (:mod:`repro.flight`): recent request traces with
  service phases, capture counters, and the full engine trace for
  sampled/forced/slow requests.

Every request carries a **query id** — minted per request, or
propagated from a valid ``X-Repro-Query-Id`` header — that appears in
the response envelope and header, the job documents, each JSON log
line, the recorded trace, and (with ``--exemplars``) the duration
histogram's exemplars, so the three observability signals join on one
key.

Request parameters (``engine``, ``workers``, ``backend``,
``timeout_s``, ``max_rows``, ``mode``) are validated up front: a malformed value —
``"timeout_s": "5"``, a negative row cap, an unknown mode — is a
``400`` with a field-specific error body, never a ``500`` out of the
engine internals.

Concurrency model (:mod:`repro.service`): there is **no query lock**.
Reads run concurrently on the published epoch snapshot — an immutable
:meth:`~repro.session.DeductiveDatabase.fork_reader` republished
atomically after every write batch — so a query sees either the
pre-batch or post-batch database, never a mix.  Admission control
bounds concurrent evaluations (excess requests get ``429`` with
``Retry-After``); per-query wall-clock budgets abort the fixpoint at a
round boundary (``408``); row limits return sound partial answers
flagged ``"truncated"``; during drain new queries get ``503``.
Scrapes of ``/metrics``/``/healthz`` never wait on a running query.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter, time

from . import __version__
from .datalog.errors import ReproError
from .engine.deadline import QueryTimeout
from .engine.vector import BACKENDS
from .flight import FlightRecorder, class_of
from .jobs import JobQueue, JobQueueFull, JobStates, UnknownJob
from .logutil import new_query_id, valid_query_id
from .metrics.instrument import export_build_info, observe_decode
from .ra.answers import AnswerSet
from .service import (AdmissionRejected, EpochManager, QueryService,
                      ServiceDraining)
from .session import DeductiveDatabase

__all__ = ["QueryServer"]


class _BadRequest(ValueError):
    """A request document failed validation (field-specific 400)."""


def _validate_query_request(request: dict, *, default_engine: str,
                            default_workers: int | None,
                            default_backend: str = "auto") -> dict:
    """Normalise a ``/query``-shaped document or raise :class:`_BadRequest`.

    Every client-supplied knob is checked for type and range *before*
    anything reaches the engine layer, so a request like
    ``{"timeout_s": "5"}`` is a clear 400 naming the field instead of
    a 500 out of ``Deadline.__init__``.  ``bool`` is a subclass of
    ``int`` in Python, so it is rejected explicitly wherever a number
    is expected (``"workers": true`` must not mean ``workers=1``).
    """
    query = request.get("query")
    if not isinstance(query, str) or not query.strip():
        raise _BadRequest('"query" must be a non-empty string')
    engine = request.get("engine", default_engine)
    if not isinstance(engine, str):
        raise _BadRequest('"engine" must be a string, got '
                          f'{type(engine).__name__}')
    workers = request.get("workers", default_workers)
    if workers is not None:
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise _BadRequest('"workers" must be a non-negative '
                              f'integer, got {workers!r}')
        if workers < 0:
            raise _BadRequest('"workers" must be non-negative, got '
                              f'{workers}')
    timeout_s = request.get("timeout_s")
    if timeout_s is not None:
        if (isinstance(timeout_s, bool)
                or not isinstance(timeout_s, (int, float))):
            raise _BadRequest('"timeout_s" must be a number of '
                              f'seconds, got {timeout_s!r}')
        if not math.isfinite(timeout_s) or timeout_s < 0:
            raise _BadRequest('"timeout_s" must be a finite '
                              f'non-negative number, got {timeout_s}')
    max_rows = request.get("max_rows")
    if max_rows is not None:
        if isinstance(max_rows, bool) or not isinstance(max_rows, int):
            raise _BadRequest('"max_rows" must be a non-negative '
                              f'integer, got {max_rows!r}')
        if max_rows < 0:
            raise _BadRequest('"max_rows" must be non-negative, got '
                              f'{max_rows}')
    mode = request.get("mode", "sync")
    if mode not in ("sync", "async"):
        raise _BadRequest('"mode" must be "sync" or "async", got '
                          f'{mode!r}')
    backend = request.get("backend", default_backend)
    if backend not in BACKENDS:
        raise _BadRequest(
            '"backend" must be one of '
            + ", ".join(f'"{name}"' for name in BACKENDS)
            + f', got {backend!r}')
    trace = request.get("trace", False)
    if not isinstance(trace, bool):
        raise _BadRequest('"trace" must be a boolean, got '
                          f'{trace!r}')
    return {"query": query, "engine": engine, "workers": workers,
            "timeout_s": timeout_s, "max_rows": max_rows,
            "mode": mode, "trace": trace, "backend": backend}


class QueryServer:
    """Own a :class:`ThreadingHTTPServer` bound to a session.

    *session* should carry a metrics registry (``/metrics`` renders an
    empty page otherwise); ``port=0`` binds an ephemeral port, read it
    back from :attr:`port`.  *session* stays the authoritative store —
    the server wraps it in an :class:`~repro.service.EpochManager` and
    serves reads from published snapshots.
    """

    def __init__(self, session: DeductiveDatabase,
                 host: str = "127.0.0.1", port: int = 8080,
                 default_engine: str = "compiled",
                 default_workers: int | None = None,
                 default_backend: str = "auto",
                 max_inflight: int = 8,
                 query_timeout_s: float | None = None,
                 max_rows: int | None = None,
                 drain_grace_s: float = 10.0,
                 job_workers: int = 2,
                 job_ttl_s: float = 600.0,
                 max_queued_jobs: int = 64,
                 trace_buffer: int = 256,
                 trace_sample: float = 0.01,
                 slow_query_ms: float | None = None,
                 trace_seed: int | None = None,
                 exemplars: bool = False) -> None:
        self.session = session
        self.default_engine = default_engine
        self.default_workers = default_workers
        self.default_backend = default_backend
        self.drain_grace_s = drain_grace_s
        self.epochs = EpochManager(session, metrics=session.metrics)
        self.service = QueryService(self.epochs,
                                    max_inflight=max_inflight,
                                    query_timeout_s=query_timeout_s,
                                    max_rows=max_rows)
        self.recorder = FlightRecorder(trace_buffer,
                                       sample_rate=trace_sample,
                                       slow_query_ms=slow_query_ms,
                                       seed=trace_seed,
                                       metrics=session.metrics)
        self.jobs = JobQueue(self.service, workers=job_workers,
                             ttl_s=job_ttl_s,
                             max_queued=max_queued_jobs,
                             recorder=self.recorder)
        if session.metrics is not None:
            if exemplars:
                session.metrics.exemplars = True
            export_build_info(session.metrics,
                              intern=session._edb.interned)
        self.started_at = time()
        self.queries_served = 0
        # handler threads race on the served counter; the
        # read-modify-write must be atomic or /healthz drifts from the
        # per-response sum the smoke reconciles against
        self._served_lock = threading.Lock()
        self._shutdown_done = False
        server = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, format, *args):  # noqa: A002
                pass  # one structured line per query instead

            def do_GET(self):  # noqa: N802
                server._get(self)

            def do_POST(self):  # noqa: N802
                server._post(self)

            def do_DELETE(self):  # noqa: N802
                server._delete(self)

        class _Server(ThreadingHTTPServer):
            # the stdlib default backlog (5) resets simultaneous
            # connects from even modest client fleets; admission
            # control, not the listen queue, is the intended gate
            request_queue_size = 128

        self.httpd = _Server((host, port), _Handler)

    # -- lifecycle -----------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def graceful_shutdown(self, grace_s: float | None = None) -> bool:
        """Drain in-flight queries, log the fact, stop the listener.

        New queries and jobs get ``503`` the moment the drain starts;
        queued jobs are cancelled immediately (nobody polls a dead
        server), while running jobs and in-flight queries get up to
        *grace_s* (default: the server's ``drain_grace_s``) to finish
        — running jobs past the grace are cooperatively cancelled at
        their next round boundary.  Safe to call more than once and
        from any thread except the one inside :meth:`serve_forever`.
        Returns whether the drain completed cleanly.
        """
        if self._shutdown_done:
            return True
        self._shutdown_done = True
        grace = self.drain_grace_s if grace_s is None else grace_s
        # jobs first: running jobs occupy admission slots, so landing
        # them (or cancelling them at a round boundary) is what lets
        # the service drain observe an empty in-flight set
        jobs_drained = self.jobs.drain(grace)
        drained = self.service.drain(grace) and jobs_drained
        if self.session.query_log is not None:
            self.session.query_log.log(
                event="server_shutdown", drained=drained,
                queries_served=self.queries_served,
                jobs_submitted=self.jobs.submitted_total,
                jobs_finished=self.jobs.finished_total,
                jobs_cancelled=self.jobs.outcomes[
                    JobStates.CANCELLED],
                epoch=self.epochs.current.number,
                uptime_s=round(time() - self.started_at, 3))
        self.httpd.shutdown()
        return drained

    def shutdown(self) -> None:
        self.graceful_shutdown()

    def close(self) -> None:
        self.httpd.server_close()

    # -- responses -----------------------------------------------------

    @staticmethod
    def _send(handler, status: int, body: str,
              content_type: str = "application/json",
              headers: dict | None = None) -> None:
        payload = body.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type",
                            f"{content_type}; charset=utf-8")
        handler.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            handler.send_header(name, str(value))
        handler.end_headers()
        handler.wfile.write(payload)

    def _send_json(self, handler, status: int, document: dict,
                   headers: dict | None = None) -> None:
        self._send(handler, status,
                   json.dumps(document, ensure_ascii=False, indent=2)
                   + "\n", headers=headers)

    def _send_query_response(self, handler, *, query: str, engine: str,
                             rows: list, duration_s: float,
                             stats: dict, outcome: str,
                             epoch: int,
                             query_id: str | None = None,
                             before_write=None) -> None:
        """Render a ``/query`` response around pre-sorted *rows*.

        The envelope round-trips through ``json.dumps``; the
        ``answers`` array is spliced in from per-row fragments built
        with a per-distinct-value dump memo, and the body goes out as
        bounded chunks (one socket write per ~64 KiB) under one
        precomputed ``Content-Length`` — no monolithic join of a
        million-row string, no intermediate list-of-lists.

        *before_write* (when given) runs after the body is fully
        rendered but before the first socket write: the flight
        recorder captures there, so by the time a client can read the
        response its trace is already retrievable — no read-after-
        response race on ``GET /debug/traces/<id>``.
        """
        envelope = {"query": query, "engine": engine,
                    "count": len(rows)}
        if query_id is not None:
            envelope["query_id"] = query_id
        head = json.dumps(envelope, ensure_ascii=False, indent=2)[:-2]
        tail = json.dumps(
            {"outcome": outcome, "truncated": outcome == "truncated",
             "epoch": epoch, "duration_s": duration_s, "stats": stats},
            ensure_ascii=False, indent=2)[2:]
        memo: dict = {}

        def fragment(value) -> str:
            frag = memo.get(value)
            if frag is None:
                frag = memo[value] = json.dumps(value,
                                                ensure_ascii=False)
            return frag

        parts = [head, ',\n  "answers": [']
        last = len(rows) - 1
        for index, row in enumerate(rows):
            parts.append("\n    ["
                         + ", ".join(fragment(v) for v in row)
                         + ("]," if index != last else "]"))
        parts.append("\n  ],\n" if rows else "],\n")
        parts.append(tail + "\n")
        chunks = [part.encode("utf-8") for part in parts]
        if before_write is not None:
            before_write()
        handler.send_response(200)
        handler.send_header("Content-Type",
                            "application/json; charset=utf-8")
        handler.send_header("Content-Length",
                            str(sum(len(c) for c in chunks)))
        if query_id is not None:
            handler.send_header("X-Repro-Query-Id", query_id)
        handler.end_headers()
        write = handler.wfile.write
        buffer = bytearray()
        for chunk in chunks:
            buffer += chunk
            if len(buffer) >= 65536:
                write(bytes(buffer))
                buffer.clear()
        if buffer:
            write(bytes(buffer))

    # -- routes --------------------------------------------------------

    def _get(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(handler, 200, {
                "status": ("draining" if self.service.draining
                           else "ok"),
                "version": __version__,
                "uptime_s": round(time() - self.started_at, 3),
                "queries_served": self.queries_served,
                "epoch": self.epochs.current.number,
                "inflight": self.service.inflight,
                "admitted_total": self.service.admitted_total,
                "rejected_total": self.service.rejected_total,
                "jobs": self._job_counts(),
                "predicates": sorted(
                    self.session.idb_predicates
                    | set(self.session._edb.relation_names)),
            })
        elif path == "/metrics":
            self.session.collect_gauges()
            text = (self.session.metrics.render_prometheus()
                    if self.session.metrics is not None else "")
            self._send(handler, 200, text,
                       content_type="text/plain; version=0.0.4")
        elif path == "/stats":
            self.session.collect_gauges()
            snapshot = (self.session.metrics.snapshot()
                        if self.session.metrics is not None
                        else {"metrics": []})
            snapshot["server"] = {
                "version": __version__,
                "uptime_s": round(time() - self.started_at, 3),
                "queries_served": self.queries_served,
                "epoch": self.epochs.current.number,
                "inflight": self.service.inflight,
                "max_inflight": self.service.max_inflight,
                "admitted_total": self.service.admitted_total,
                "rejected_total": self.service.rejected_total,
                "completed_total": self.service.completed_total,
                "jobs": self._job_counts(),
                "recorder": self.recorder.stats(),
            }
            self._send_json(handler, 200, snapshot)
        elif path == "/debug/traces":
            self._send_json(handler, 200, self.recorder.report())
        elif path.startswith("/debug/traces/"):
            query_id = path[len("/debug/traces/"):]
            document = self.recorder.get(query_id)
            if document is None:
                self._send_json(handler, 404, {
                    "error": f"no recorded trace for {query_id!r} "
                             "(never captured, or evicted)"})
            else:
                self._send_json(handler, 200, document)
        elif path == "/jobs":
            self._send_json(handler, 200, {
                "jobs": [job.to_dict() for job in self.jobs.jobs()],
                "queued": self.jobs.queued,
                "running": self.jobs.running,
            })
        elif path.startswith("/jobs/"):
            self._get_job(handler, path)
        else:
            self._send_json(handler, 404,
                            {"error": f"unknown path {path!r}"})

    def _job_counts(self) -> dict:
        return {
            "queued": self.jobs.queued,
            "running": self.jobs.running,
            "submitted_total": self.jobs.submitted_total,
            "finished_total": self.jobs.finished_total,
            "outcomes": dict(self.jobs.outcomes),
        }

    def _get_job(self, handler, path: str) -> None:
        tail = path[len("/jobs/"):]
        job_id, _, rest = tail.partition("/")
        if rest not in ("", "result"):
            self._send_json(handler, 404,
                            {"error": f"unknown path {path!r}"})
            return
        try:
            job = self.jobs.get(job_id)
        except UnknownJob as error:
            self._send_json(handler, 404, {"error": str(error)})
            return
        if rest == "":
            self._send_json(handler, 200, job.to_dict())
        else:
            self._send_job_result(handler, job)

    def _send_job_result(self, handler, job) -> None:
        """``GET /jobs/<id>/result``: the finished answers, or why not.

        An unfinished job is a ``409`` carrying live progress (poll
        the status URL instead); a finished-without-result job answers
        with the status its failure mapped to (408 timeout, 409
        cancelled, stored 400/500 for errors); a ``done`` or
        ``truncated`` job streams through the same columnar renderer —
        and the same decode metering — as a synchronous ``/query``.
        """
        if not job.finished:
            self._send_json(handler, 409, {
                "error": f"job {job.id} is {job.state}; "
                         "result not ready",
                "state": job.state,
                "progress": job.progress(),
            })
            return
        if job.result is None:
            status = {JobStates.TIMEOUT: 408,
                      JobStates.CANCELLED: 409}.get(
                job.state, job.error_status or 500)
            self._send_json(handler, status, {
                "error": job.error or job.state,
                "state": job.state,
            })
            return
        result = job.result
        answers = result.answers
        was_lazy = (isinstance(answers, AnswerSet)
                    and not answers.is_decoded)
        if isinstance(answers, AnswerSet):
            rows = answers.sorted_rows()
        else:
            rows = sorted(answers, key=repr)
        if was_lazy and self.session.metrics is not None:
            observe_decode(self.session.metrics,
                           answers.decode_seconds, len(answers))
        self._send_query_response(
            handler, query=job.query,
            engine=result.stats.engine or job.engine, rows=rows,
            duration_s=round(result.duration_s, 6),
            stats=result.stats.to_dict(),
            outcome=result.outcome, epoch=result.epoch,
            query_id=job.query_id)

    def _post(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/query":
            self._post_query(handler)
        elif path == "/jobs":
            self._post_jobs(handler)
        elif path == "/facts":
            self._post_facts(handler)
        else:
            self._send_json(handler, 404,
                            {"error": f"unknown path {path!r}"})

    def _delete(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        job_id = path[len("/jobs/"):]
        if not path.startswith("/jobs/") or "/" in job_id:
            self._send_json(handler, 404,
                            {"error": f"unknown path {path!r}"})
            return
        try:
            job = self.jobs.request_cancel(job_id)
        except UnknownJob as error:
            self._send_json(handler, 404, {"error": str(error)})
            return
        self._send_json(handler, 200, {
            "id": job.id,
            "state": job.state,
            "cancel_requested": job.cancel.is_set(),
        })

    def _read_body(self, handler) -> dict | None:
        try:
            length = int(handler.headers.get("Content-Length", 0))
            request = json.loads(
                handler.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._send_json(handler, 400,
                            {"error": f"bad request body: {error}"})
            return None
        if not isinstance(request, dict):
            self._send_json(handler, 400,
                            {"error": "request must be a JSON object"})
            return None
        return request

    def _validated(self, handler, request: dict) -> dict | None:
        try:
            return _validate_query_request(
                request, default_engine=self.default_engine,
                default_workers=self.default_workers,
                default_backend=self.default_backend)
        except _BadRequest as error:
            self._send_json(handler, 400, {"error": str(error)})
            return None

    @staticmethod
    def _request_query_id(handler) -> str:
        """The request's query id: a valid ``X-Repro-Query-Id``
        header propagates the caller's id, otherwise one is minted."""
        supplied = handler.headers.get("X-Repro-Query-Id")
        if supplied is not None and valid_query_id(supplied):
            return supplied
        return new_query_id()

    def _finalize(self, ctx, *, duration_s: float, outcome: str,
                  engine: str | None = None, epoch: int | None = None,
                  answers: int = 0) -> None:
        """Close a request context into the flight recorder."""
        self.recorder.finalize(
            ctx, duration_s=duration_s, outcome=outcome, engine=engine,
            formula_class=class_of(self.session, ctx.query or ""),
            epoch=epoch, answers=answers,
            query_log=self.session.query_log)

    def _post_query(self, handler) -> None:
        request = self._read_body(handler)
        if request is None:
            return
        params = self._validated(handler, request)
        if params is None:
            return
        query_id = self._request_query_id(handler)
        if params["mode"] == "async":
            self._submit_job(handler, params, query_id=query_id)
            return
        ctx = self.recorder.context(query_id, query=params["query"],
                                    force=params["trace"])
        started = perf_counter()
        try:
            result = self.service.run(params["query"],
                                      engine=params["engine"],
                                      workers=params["workers"],
                                      backend=params["backend"],
                                      timeout_s=params["timeout_s"],
                                      max_rows=params["max_rows"],
                                      ctx=ctx)
        except AdmissionRejected as error:
            # rejected before evaluation: no capture, but the id still
            # rides the error body so retries can propagate it
            self._send_json(
                handler, 429,
                {"error": str(error), "query_id": query_id,
                 "retry_after_s": error.retry_after_s},
                headers={"Retry-After": error.retry_after_s})
            return
        except ServiceDraining as error:
            self._send_json(handler, 503, {"error": str(error),
                                           "query_id": query_id})
            return
        except QueryTimeout as error:
            self._finalize(ctx, duration_s=perf_counter() - started,
                           outcome="timeout", engine=params["engine"])
            self._send_json(
                handler, 408,
                {"error": str(error), "outcome": "timeout",
                 "query_id": query_id})
            return
        except (ReproError, ValueError) as error:
            self._finalize(ctx, duration_s=perf_counter() - started,
                           outcome="error", engine=params["engine"])
            self._send_json(handler, 400, {"error": str(error),
                                           "query_id": query_id})
            return
        except Exception as error:  # defensive: keep serving
            self._finalize(ctx, duration_s=perf_counter() - started,
                           outcome="error", engine=params["engine"])
            self._send_json(
                handler, 500,
                {"error": f"{type(error).__name__}: {error}",
                 "query_id": query_id})
            return
        with self._served_lock:
            self.queries_served += 1
        duration_s = round(perf_counter() - started, 6)
        answers = result.answers
        # Rendering is where a lazy answer set is finally forced;
        # meter that decode (and only that — a cached, already-decoded
        # set records nothing) before streaming the body.
        was_lazy = (isinstance(answers, AnswerSet)
                    and not answers.is_decoded)
        with ctx.phase("decode", lazy=was_lazy):
            if isinstance(answers, AnswerSet):
                rows = answers.sorted_rows()
            else:
                rows = sorted(answers, key=repr)
        if was_lazy and self.session.metrics is not None:
            observe_decode(self.session.metrics,
                           answers.decode_seconds, len(answers))
        engine_label = result.stats.engine or params["engine"]
        render_started = perf_counter()

        def _capture() -> None:
            # runs once the body is rendered, before the first socket
            # write: the render phase covers serialisation (not the
            # client-paced writes) and the trace is retrievable the
            # moment the response is readable
            ctx.add_phase("render", render_started, rows=len(rows))
            self._finalize(ctx, duration_s=perf_counter() - started,
                           outcome=result.outcome, engine=engine_label,
                           epoch=result.epoch, answers=len(rows))

        self._send_query_response(
            handler, query=params["query"], engine=engine_label,
            rows=rows, duration_s=duration_s,
            stats=result.stats.to_dict(), outcome=result.outcome,
            epoch=result.epoch, query_id=query_id,
            before_write=_capture)

    def _post_jobs(self, handler) -> None:
        request = self._read_body(handler)
        if request is None:
            return
        params = self._validated(handler, request)
        if params is None:
            return
        self._submit_job(handler, params,
                         query_id=self._request_query_id(handler))

    def _submit_job(self, handler, params: dict,
                    query_id: str | None = None) -> None:
        """202 + job id; the epoch is pinned inside ``submit``."""
        try:
            job = self.jobs.submit(params["query"],
                                   engine=params["engine"],
                                   workers=params["workers"],
                                   backend=params["backend"],
                                   timeout_s=params["timeout_s"],
                                   max_rows=params["max_rows"],
                                   query_id=query_id,
                                   trace=params["trace"])
        except ServiceDraining as error:
            self._send_json(handler, 503, {"error": str(error)})
            return
        except JobQueueFull as error:
            self._send_json(handler, 429, {"error": str(error)},
                            headers={"Retry-After": 1})
            return
        self._send_json(handler, 202, {
            "id": job.id,
            "query_id": job.query_id,
            "state": job.state,
            "epoch": job.epoch.number,
            "status_url": f"/jobs/{job.id}",
            "result_url": f"/jobs/{job.id}/result",
        }, headers={"X-Repro-Query-Id": job.query_id})

    def _post_facts(self, handler) -> None:
        request = self._read_body(handler)
        if request is None:
            return
        if self.service.draining:
            self._send_json(
                handler, 503,
                {"error": "service is draining; writes refused"})
            return
        add = request.get("add") or {}
        remove = request.get("remove") or {}
        rules = request.get("rules") or []
        if (not isinstance(add, dict) or not isinstance(remove, dict)
                or not isinstance(rules, list)):
            self._send_json(
                handler, 400,
                {"error": '"add"/"remove" must be objects mapping '
                          'predicates to row arrays and "rules" an '
                          'array of rule strings'})
            return
        query_id = self._request_query_id(handler)
        started = perf_counter()
        try:
            epoch = self.service.apply_batch(add=add, remove=remove,
                                             rules=rules)
        except (ReproError, ValueError, TypeError) as error:
            self._send_json(handler, 400, {"error": str(error),
                                           "query_id": query_id})
            return
        except Exception as error:  # defensive: keep serving
            self._send_json(
                handler, 500,
                {"error": f"{type(error).__name__}: {error}",
                 "query_id": query_id})
            return
        duration_s = round(perf_counter() - started, 6)
        added = {p: len(list(rows)) for p, rows in add.items()}
        removed = {p: len(list(rows)) for p, rows in remove.items()}
        if self.session.query_log is not None:
            self.session.query_log.log(
                event="write_batch", query_id=query_id,
                epoch=epoch.number,
                added=sum(added.values()),
                removed=sum(removed.values()),
                rules=len(rules), duration_s=duration_s)
        self._send_json(handler, 200, {
            "query_id": query_id,
            "epoch": epoch.number,
            "added": added,
            "removed": removed,
            "rules": len(rules),
            "duration_s": duration_s,
        }, headers={"X-Repro-Query-Id": query_id})
