"""A monitored HTTP query server over a deductive-database session.

``repro serve program.dl`` turns the reproduction into a long-lived
service built entirely on the stdlib:

* ``POST /query`` — evaluate a query; JSON in
  (``{"query": "P(a, Y)", "engine"?: ..., "workers"?: ...}``), JSON
  out (answers, count, duration, the query's full
  :meth:`~repro.engine.stats.EvaluationStats.to_dict`).  The
  ``answers`` array is rendered straight from the lazy columnar
  :class:`~repro.ra.answers.AnswerSet`: one ``json.dumps`` per
  *distinct* constant (answer columns repeat few distinct values),
  one fragment per row, written in bounded chunks under a
  precomputed ``Content-Length`` — the only point in the service
  where decode is forced, metered by ``repro_decode_seconds``;
* ``GET /metrics`` — the session registry in Prometheus text
  exposition format (database gauges refreshed at scrape time);
* ``GET /healthz`` — liveness (200 + uptime/served counters);
* ``GET /stats`` — the registry's JSON snapshot plus server info.

The handler runs on :class:`http.server.ThreadingHTTPServer`; the
metrics registry is thread-safe, and *evaluation* is serialised by one
lock — the session's lazy caches (plan cache, indexes, hash tables,
materialisation) are not designed for concurrent mutation, and a
correct answer beats a concurrently wrong one.  Scrapes of
``/metrics``/``/healthz`` never wait on a running query.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter, time

from .datalog.errors import ReproError
from .engine.stats import EvaluationStats
from .metrics.instrument import observe_decode
from .ra.answers import AnswerSet
from .session import DeductiveDatabase

__all__ = ["QueryServer"]


class QueryServer:
    """Own a :class:`ThreadingHTTPServer` bound to a session.

    *session* should carry a metrics registry (``/metrics`` renders an
    empty page otherwise); ``port=0`` binds an ephemeral port, read it
    back from :attr:`port`.
    """

    def __init__(self, session: DeductiveDatabase,
                 host: str = "127.0.0.1", port: int = 8080,
                 default_engine: str = "compiled",
                 default_workers: int | None = None) -> None:
        self.session = session
        self.default_engine = default_engine
        self.default_workers = default_workers
        self.started_at = time()
        self.queries_served = 0
        self._query_lock = threading.Lock()
        server = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, format, *args):  # noqa: A002
                pass  # one structured line per query instead

            def do_GET(self):  # noqa: N802
                server._get(self)

            def do_POST(self):  # noqa: N802
                server._post(self)

        self.httpd = ThreadingHTTPServer((host, port), _Handler)

    # -- lifecycle -----------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()

    def close(self) -> None:
        self.httpd.server_close()

    # -- responses -----------------------------------------------------

    @staticmethod
    def _send(handler, status: int, body: str,
              content_type: str = "application/json") -> None:
        payload = body.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type",
                            f"{content_type}; charset=utf-8")
        handler.send_header("Content-Length", str(len(payload)))
        handler.end_headers()
        handler.wfile.write(payload)

    def _send_json(self, handler, status: int, document: dict) -> None:
        self._send(handler, status,
                   json.dumps(document, ensure_ascii=False, indent=2)
                   + "\n")

    def _send_query_response(self, handler, *, query: str, engine: str,
                             rows: list, duration_s: float,
                             stats: dict) -> None:
        """Render a ``/query`` response around pre-sorted *rows*.

        The envelope round-trips through ``json.dumps``; the
        ``answers`` array is spliced in from per-row fragments built
        with a per-distinct-value dump memo, and the body goes out as
        bounded chunks (one socket write per ~64 KiB) under one
        precomputed ``Content-Length`` — no monolithic join of a
        million-row string, no intermediate list-of-lists.
        """
        head = json.dumps(
            {"query": query, "engine": engine, "count": len(rows)},
            ensure_ascii=False, indent=2)[:-2]
        tail = json.dumps({"duration_s": duration_s, "stats": stats},
                          ensure_ascii=False, indent=2)[2:]
        memo: dict = {}

        def fragment(value) -> str:
            frag = memo.get(value)
            if frag is None:
                frag = memo[value] = json.dumps(value,
                                                ensure_ascii=False)
            return frag

        parts = [head, ',\n  "answers": [']
        last = len(rows) - 1
        for index, row in enumerate(rows):
            parts.append("\n    ["
                         + ", ".join(fragment(v) for v in row)
                         + ("]," if index != last else "]"))
        parts.append("\n  ],\n" if rows else "],\n")
        parts.append(tail + "\n")
        chunks = [part.encode("utf-8") for part in parts]
        handler.send_response(200)
        handler.send_header("Content-Type",
                            "application/json; charset=utf-8")
        handler.send_header("Content-Length",
                            str(sum(len(c) for c in chunks)))
        handler.end_headers()
        write = handler.wfile.write
        buffer = bytearray()
        for chunk in chunks:
            buffer += chunk
            if len(buffer) >= 65536:
                write(bytes(buffer))
                buffer.clear()
        if buffer:
            write(bytes(buffer))

    # -- routes --------------------------------------------------------

    def _get(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(handler, 200, {
                "status": "ok",
                "uptime_s": round(time() - self.started_at, 3),
                "queries_served": self.queries_served,
                "predicates": sorted(
                    self.session.idb_predicates
                    | set(self.session._edb.relation_names)),
            })
        elif path == "/metrics":
            self.session.collect_gauges()
            text = (self.session.metrics.render_prometheus()
                    if self.session.metrics is not None else "")
            self._send(handler, 200, text,
                       content_type="text/plain; version=0.0.4")
        elif path == "/stats":
            self.session.collect_gauges()
            snapshot = (self.session.metrics.snapshot()
                        if self.session.metrics is not None
                        else {"metrics": []})
            snapshot["server"] = {
                "uptime_s": round(time() - self.started_at, 3),
                "queries_served": self.queries_served,
            }
            self._send_json(handler, 200, snapshot)
        else:
            self._send_json(handler, 404,
                            {"error": f"unknown path {path!r}"})

    def _post(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        if path != "/query":
            self._send_json(handler, 404,
                            {"error": f"unknown path {path!r}"})
            return
        try:
            length = int(handler.headers.get("Content-Length", 0))
            request = json.loads(
                handler.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._send_json(handler, 400,
                            {"error": f"bad request body: {error}"})
            return
        if not isinstance(request, dict) or "query" not in request:
            self._send_json(
                handler, 400,
                {"error": 'request must be a JSON object with a '
                          '"query" key'})
            return
        engine = request.get("engine", self.default_engine)
        workers = request.get("workers", self.default_workers)
        stats = EvaluationStats()
        started = perf_counter()
        try:
            with self._query_lock:
                answers = self.session.query(
                    str(request["query"]), stats=stats, engine=engine,
                    workers=workers)
                self.queries_served += 1
        except (ReproError, ValueError) as error:
            self._send_json(handler, 400, {"error": str(error)})
            return
        except Exception as error:  # defensive: keep serving
            self._send_json(
                handler, 500,
                {"error": f"{type(error).__name__}: {error}"})
            return
        duration_s = round(perf_counter() - started, 6)
        # Rendering is where a lazy answer set is finally forced;
        # meter that decode (and only that — a cached, already-decoded
        # set records nothing) before streaming the body.
        was_lazy = (isinstance(answers, AnswerSet)
                    and not answers.is_decoded)
        if isinstance(answers, AnswerSet):
            rows = answers.sorted_rows()
        else:
            rows = sorted(answers, key=repr)
        if was_lazy and self.session.metrics is not None:
            observe_decode(self.session.metrics,
                           answers.decode_seconds, len(answers))
        self._send_query_response(
            handler, query=str(request["query"]),
            engine=stats.engine or engine, rows=rows,
            duration_s=duration_s, stats=stats.to_dict())
