"""Standard instrumentation: stats deltas and database state → registry.

This module owns the metric *names* of the session/query layer, so
every exposition surface (``repro serve``'s ``/metrics``, tests, the
CI serve smoke) sees one stable vocabulary:

===================================== ======================== =========
metric                                labels                   kind
===================================== ======================== =========
``repro_queries_total``               engine, formula_class,   counter
                                      outcome
``repro_query_errors_total``          engine, error            counter
``repro_queries_rejected_total``      —                        counter
``repro_queries_timed_out_total``     —                        counter
``repro_queries_cancelled_total``     —                        counter
``repro_query_duration_seconds``      engine, formula_class    histogram
``repro_query_answers``               engine, formula_class    histogram
``repro_rounds_total``                engine                   counter
``repro_probes_total``                engine                   counter
``repro_derived_total``               engine                   counter
``repro_plan_cache_hits_total``       engine                   counter
``repro_plan_cache_misses_total``     engine                   counter
``repro_hash_builds_total``           engine                   counter
``repro_hash_lookups_total``          engine                   counter
``repro_answer_cache_hits_total``     engine                   counter
``repro_vector_batches_total``        backend                  counter
``repro_vector_rows_total``           —                        counter
``repro_answers_lazy_total``          —                        counter
``repro_answers_decoded_total``       —                        counter
``repro_decode_seconds``              —                        histogram
``repro_relation_rows``               relation                 gauge
``repro_relation_version``            relation                 gauge
``repro_cached_hash_tables``          —                        gauge
``repro_db_index_rebuilds``           —                        gauge
``repro_db_hash_builds``              —                        gauge
``repro_db_touches``                  —                        gauge
``repro_plan_cache_size``             —                        gauge
``repro_symbols_total``               —                        gauge
``repro_encoded_bytes_estimate``      —                        gauge
``repro_inflight_queries``            —                        gauge
``repro_admission_queue_depth``       —                        gauge
``repro_epoch``                       —                        gauge
``repro_snapshot_age_seconds``        —                        histogram
``repro_epoch_publish_seconds``       —                        histogram
``repro_jobs_submitted_total``        —                        counter
``repro_jobs_total``                  outcome                  counter
``repro_job_queue_depth``             —                        gauge
``repro_jobs_running``                —                        gauge
``repro_job_queue_wait_seconds``      —                        histogram
``repro_job_run_seconds``             —                        histogram
``repro_traces_captured_total``       reason                   counter
``repro_build_info``                  version, python, intern, gauge
                                      vector
===================================== ======================== =========

(The sharded engine's pool-health metrics are owned by
:func:`repro.engine.sharded.record_pool_health` — same discipline,
engine-local names.)

The feed is the snapshot-delta discipline of
:func:`repro.engine.stats.delta_between`: the session snapshots the
query's :class:`~repro.engine.stats.EvaluationStats` around the
evaluation and passes the difference here, so for any scripted session
``repro_rounds_total`` equals the sum of the per-query ``rounds``
exactly — the reconciliation the acceptance tests assert.
"""

from __future__ import annotations

from ..engine.stats import ACCUMULATING_FIELDS
from .registry import MetricsRegistry

__all__ = ["observe_query", "observe_query_error", "observe_decode",
           "observe_rejection", "observe_epoch_publish",
           "observe_snapshot_age", "set_admission_gauges",
           "observe_job_submitted", "observe_job_finished",
           "set_job_gauges",
           "export_database_gauges", "export_build_info",
           "LATENCY_BUCKETS", "COUNT_BUCKETS"]

#: Query latency buckets: log scale, 100µs → 100s.
LATENCY_BUCKETS = tuple(round(10.0 ** (e / 2), 10)
                        for e in range(-8, 5))
#: Answer-count buckets: log scale, 1 → 1e6.
COUNT_BUCKETS = tuple(float(10 ** e) for e in range(7))

#: stats-delta field → counter name (all labelled by ``engine``).
_STATS_COUNTERS = {
    "rounds": ("repro_rounds_total",
               "Fixpoint rounds executed."),
    "probes": ("repro_probes_total",
               "Index probes performed by the solvers."),
    "derived": ("repro_derived_total",
                "Tuples derived before deduplication."),
    "plan_cache_hits": ("repro_plan_cache_hits_total",
                        "Join-plan compilations served from cache."),
    "plan_cache_misses": ("repro_plan_cache_misses_total",
                          "Join-plan compilations that missed."),
    "hash_builds": ("repro_hash_builds_total",
                    "Hash tables built by the join kernel."),
    "hash_lookups": ("repro_hash_lookups_total",
                     "Hash-table fetches by the join kernel."),
    "answer_cache_hits": ("repro_answer_cache_hits_total",
                          "Queries served from the session's "
                          "cross-query answer cache."),
}
assert set(_STATS_COUNTERS) <= set(ACCUMULATING_FIELDS)


def observe_query(registry: MetricsRegistry, *, engine: str,
                  formula_class: str, duration_s: float, answers: int,
                  stats_delta: dict | None = None,
                  lazy_answers: int = 0,
                  outcome: str = "ok",
                  query_id: str | None = None) -> None:
    """Record one successful query: rate, latency, size and the
    engine-level work counters from its stats delta.

    *outcome* distinguishes completion modes that all return answers:
    ``"ok"`` for a full fixpoint, ``"truncated"`` when a row-limit
    deadline stopped the fixpoint at a round boundary (the partial
    answers are sound, just incomplete).

    *lazy_answers* is the number of answers that crossed the query
    boundary still dictionary-encoded (a not-yet-decoded
    :class:`~repro.ra.answers.AnswerSet`); together with
    :func:`observe_decode`'s ``repro_answers_decoded_total`` it
    reconciles how much decode work the lazy columnar path deferred
    and how much was eventually forced.

    *query_id*, when given, rides along as an exemplar on the
    duration histogram — the trace↔metric link: a scrape with
    ``--exemplars`` shows which recorded trace produced the latest
    observation in each latency bucket.
    """
    registry.counter(
        "repro_queries_total", "Queries answered, by outcome.",
        ("engine", "formula_class", "outcome"),
    ).inc(engine=engine, formula_class=formula_class, outcome=outcome)
    registry.histogram(
        "repro_query_duration_seconds", "Wall-clock query latency.",
        ("engine", "formula_class"), buckets=LATENCY_BUCKETS,
    ).observe(duration_s,
              exemplar=({"query_id": query_id} if query_id else None),
              engine=engine, formula_class=formula_class)
    registry.histogram(
        "repro_query_answers", "Answers per query.",
        ("engine", "formula_class"), buckets=COUNT_BUCKETS,
    ).observe(answers, engine=engine, formula_class=formula_class)
    if lazy_answers:
        registry.counter(
            "repro_answers_lazy_total",
            "Answers returned still encoded (decode deferred).",
        ).inc(lazy_answers)
    if stats_delta is None:
        return
    for field, (name, help_text) in _STATS_COUNTERS.items():
        amount = stats_delta.get(field, 0)
        registry.counter(name, help_text, ("engine",)).inc(
            amount, engine=engine)
    batches = stats_delta.get("vector_batches", 0)
    if batches:
        registry.counter(
            "repro_vector_batches_total",
            "Delta rounds executed by the vectorised batch-join "
            "kernel, by backend.",
            ("backend",),
        ).inc(batches,
              backend=stats_delta.get("backend") or "unknown")
        registry.counter(
            "repro_vector_rows_total",
            "Rows emitted by vectorised batch probes (before "
            "dedup against the running total).",
        ).inc(stats_delta.get("vector_rows", 0))
    if (stats_delta.get("shard_counts") or stats_delta.get("workers")
            or stats_delta.get("pool_fallbacks")
            or stats_delta.get("sequential_rounds")):
        from ..engine.sharded import record_pool_health
        record_pool_health(registry, stats_delta)


def observe_decode(registry: MetricsRegistry, seconds: float,
                   answers: int) -> None:
    """Record one forced materialisation of a lazy answer set.

    Called where decode actually happens (e.g. the server rendering a
    response body), *not* on the query path — a cache hit that reuses
    an already-decoded :class:`~repro.ra.answers.AnswerSet` records
    nothing, so ``repro_answers_decoded_total`` counts distinct decode
    work, never repeats.
    """
    registry.histogram(
        "repro_decode_seconds",
        "Wall-clock time of one answer-set decode.",
        buckets=LATENCY_BUCKETS,
    ).observe(seconds)
    registry.counter(
        "repro_answers_decoded_total",
        "Answers materialised to value tuples on demand.",
    ).inc(answers)


def observe_query_error(registry: MetricsRegistry, *, engine: str,
                        formula_class: str, error: str,
                        outcome: str = "error") -> None:
    """Record one failed query under both the rate and error names.

    *outcome* ``"timeout"`` marks a wall-clock deadline expiry and
    ``"cancelled"`` a cooperative cancellation (a deleted job, a
    draining server): each gets its own outcome label and dedicated
    counter instead of ``repro_query_errors_total``, which stays a
    count of *genuine* evaluation failures.
    """
    registry.counter(
        "repro_queries_total", "Queries answered, by outcome.",
        ("engine", "formula_class", "outcome"),
    ).inc(engine=engine, formula_class=formula_class, outcome=outcome)
    if outcome == "timeout":
        registry.counter(
            "repro_queries_timed_out_total",
            "Queries aborted by their wall-clock deadline.",
        ).inc()
        return
    if outcome == "cancelled":
        registry.counter(
            "repro_queries_cancelled_total",
            "Queries aborted by a cooperative cancel flag.",
        ).inc()
        return
    registry.counter(
        "repro_query_errors_total", "Query failures by exception type.",
        ("engine", "error"),
    ).inc(engine=engine, error=error)


def observe_rejection(registry: MetricsRegistry) -> None:
    """Record one query turned away at admission (HTTP 429)."""
    registry.counter(
        "repro_queries_rejected_total",
        "Queries rejected by admission control (429).",
    ).inc()


def observe_job_submitted(registry: MetricsRegistry) -> None:
    """Record one background job accepted into the queue.

    Together with ``repro_jobs_total`` this reconciles exactly:
    ``submitted == sum(outcomes) + queued + running`` at any quiesced
    instant (the jobs smoke asserts it through the wire).
    """
    registry.counter(
        "repro_jobs_submitted_total",
        "Background jobs accepted into the queue.",
    ).inc()


def observe_job_finished(registry: MetricsRegistry, *, outcome: str,
                         queue_wait_s: float,
                         run_s: float | None) -> None:
    """Record one job reaching a terminal state.

    *run_s* is ``None`` for jobs that never ran (cancelled while
    queued) — they count in the outcome counter and the queue-wait
    histogram but not in the run-duration one.
    """
    registry.counter(
        "repro_jobs_total", "Background jobs finished, by outcome.",
        ("outcome",),
    ).inc(outcome=outcome)
    registry.histogram(
        "repro_job_queue_wait_seconds",
        "Time from job submission to its run starting (or to "
        "cancellation while still queued).",
        buckets=LATENCY_BUCKETS,
    ).observe(queue_wait_s)
    if run_s is not None:
        registry.histogram(
            "repro_job_run_seconds",
            "Wall-clock run time of one background job (admission "
            "wait included).",
            buckets=LATENCY_BUCKETS,
        ).observe(run_s)


def set_job_gauges(registry: MetricsRegistry, *, queue_depth: int,
                   running: int) -> None:
    """Set the point-in-time job-queue gauges."""
    registry.gauge(
        "repro_job_queue_depth",
        "Background jobs waiting for a worker.",
    ).set(queue_depth)
    registry.gauge(
        "repro_jobs_running",
        "Background jobs currently evaluating.",
    ).set(running)


def observe_epoch_publish(registry: MetricsRegistry, *, epoch: int,
                          seconds: float) -> None:
    """Record one write batch becoming a published snapshot."""
    registry.gauge(
        "repro_epoch", "Epoch number of the published snapshot.",
    ).set(epoch)
    registry.histogram(
        "repro_epoch_publish_seconds",
        "Wall-clock time to apply a write batch and publish the "
        "next snapshot.",
        buckets=LATENCY_BUCKETS,
    ).observe(seconds)


def observe_snapshot_age(registry: MetricsRegistry,
                         seconds: float) -> None:
    """Record how stale the snapshot an admitted query read was."""
    registry.histogram(
        "repro_snapshot_age_seconds",
        "Age of the published snapshot at query admission.",
        buckets=LATENCY_BUCKETS,
    ).observe(seconds)


def set_admission_gauges(registry: MetricsRegistry, *,
                         inflight: int, queue_depth: int) -> None:
    """Set the point-in-time admission gauges.

    Called when admission state changes (admit, release, reject), so
    ``/metrics`` always shows the live in-flight count.
    """
    registry.gauge(
        "repro_inflight_queries",
        "Queries currently evaluating.",
    ).set(inflight)
    registry.gauge(
        "repro_admission_queue_depth",
        "Admission slots in use beyond completed work "
        "(waiting + running minus capacity headroom).",
    ).set(queue_depth)


def export_database_gauges(registry: MetricsRegistry,
                           database) -> None:
    """Set the point-in-time database gauges from a
    :meth:`~repro.ra.database.Database.metrics_snapshot`.

    Called at scrape/snapshot time (``GET /metrics``, ``GET /stats``),
    never on a query path — reading relation sizes per query would be
    overhead for a value only the scraper needs.
    """
    snapshot = database.metrics_snapshot()
    rows = registry.gauge("repro_relation_rows",
                          "Rows per stored relation.", ("relation",))
    versions = registry.gauge(
        "repro_relation_version",
        "Mutation counter per relation (invalidation epoch).",
        ("relation",))
    for name, info in snapshot["relations"].items():
        rows.set(info["rows"], relation=name)
        versions.set(info["version"], relation=name)
    registry.gauge(
        "repro_cached_hash_tables",
        "Hash tables currently cached on the database.",
    ).set(snapshot["cached_hash_tables"])
    registry.gauge(
        "repro_db_index_rebuilds",
        "Lazy per-position index (re)builds since process start.",
    ).set(snapshot["index_rebuilds"])
    registry.gauge(
        "repro_db_hash_builds",
        "Hash tables built for the join kernel since process start.",
    ).set(snapshot["hash_builds"])
    registry.gauge(
        "repro_db_touches",
        "Rows examined while matching since process start.",
    ).set(snapshot["touches"])
    registry.gauge(
        "repro_symbols_total",
        "Constants interned in the database's symbol table "
        "(0 with intern=False).",
    ).set(snapshot["symbols"])
    registry.gauge(
        "repro_encoded_bytes_estimate",
        "Approximate bytes of encoded fact storage (tuple slots "
        "plus dictionary payload).",
    ).set(snapshot["encoded_bytes_estimate"])
    from ..engine.plan import plan_cache_size
    registry.gauge(
        "repro_plan_cache_size",
        "Compiled join plans in the process-wide cache.",
    ).set(plan_cache_size())


def export_build_info(registry: MetricsRegistry, *,
                      intern: bool = True) -> None:
    """Publish the ``repro_build_info`` identity gauge (value 1).

    The standard build-info idiom: the interesting facts — package
    version, python version, intern mode, vector backend (the numpy
    version, or ``stub`` when numpy is unavailable) — live in the
    labels so dashboards and smoke logs can join any series against
    what is actually running.  Set once at server construction.
    """
    import platform

    from .. import __version__
    from ..engine.vector import numpy_version

    numpy_v = numpy_version()
    registry.gauge(
        "repro_build_info",
        "Build/runtime identity; value is always 1.",
        ("version", "python", "intern", "vector"),
    ).set(1, version=__version__, python=platform.python_version(),
          intern="on" if intern else "off",
          vector=f"numpy {numpy_v}" if numpy_v else "stub")
