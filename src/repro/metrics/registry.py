"""A dependency-free, thread-safe metrics registry.

The service layer (``repro serve``) and the session facade need
longitudinal signals — query rates per engine and formula class,
latency and answer-count distributions, cache hit ratios — that
outlive any single evaluation.  :class:`EvaluationStats` is
per-evaluation and :class:`~repro.engine.trace.Trace` is per-query;
this module is the third signal: process-lifetime aggregates.

Three metric kinds, modelled on the Prometheus data model:

* :class:`Counter` — monotone accumulator (``inc``);
* :class:`Gauge` — point-in-time value (``set``/``inc``/``dec``);
* :class:`Histogram` — observation distribution over *fixed log-scale
  buckets*; buckets are half-open intervals ``(lower, upper]`` and
  rendered cumulatively under the standard ``le`` label.

Every metric may carry a label set (``engine=``, ``formula_class=``,
``predicate=`` …).  Label cardinality is capped per metric
(:class:`LabelCardinalityError` past the cap) so an unbounded label
value — say, a user-supplied query string — cannot grow the registry
without limit.

All mutation goes through one lock per registry, so concurrent
increments from serving threads land exactly (tested with 8 threads).
The disabled state is ``registry=None`` at every instrumentation
site — identical to the ``trace=None`` discipline — so the engines'
hot loops never see the lock.

Exposition formats:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  format (``# HELP``/``# TYPE`` plus one sample line per series);
* :meth:`MetricsRegistry.snapshot` /
  :meth:`MetricsRegistry.render_json` — a JSON document for
  ``GET /stats`` and offline tooling;
* :func:`parse_prometheus_text` — a minimal parser for the text
  format, used by the round-trip tests and the CI serve smoke.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter", "Gauge", "Histogram", "LabelCardinalityError",
    "MetricError", "MetricsRegistry", "DEFAULT_BUCKETS",
    "parse_prometheus_text",
]

#: Default histogram buckets: a fixed log scale, half-decade steps
#: from 100µs to 100s — wide enough for both query latencies and
#: answer counts without per-metric tuning.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2), 10) for exponent in range(-8, 5))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric declaration or use."""


class LabelCardinalityError(MetricError):
    """A metric exceeded its configured number of label sets."""


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(bound)


class _Metric:
    """Common machinery: label validation, child series, rendering."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help_text: str, label_names: tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label) or label == "le":
                raise MetricError(
                    f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._registry = registry
        self._lock = registry._lock
        #: label-value tuple → per-series state
        self._series: dict[tuple[str, ...], object] = {}

    # -- label handling ------------------------------------------------

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name}: expected labels "
                f"{list(self.label_names)}, got {sorted(labels)}")
        return tuple(str(labels[name]) for name in self.label_names)

    def _state(self, labels: Mapping[str, object]) -> object:
        """The series state for a label set, created under the lock."""
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            if len(self._series) >= self._registry.max_label_sets:
                raise LabelCardinalityError(
                    f"{self.name}: more than "
                    f"{self._registry.max_label_sets} label sets "
                    f"(runaway label value?)")
            state = self._new_state()
            self._series[key] = state
        return state

    def _new_state(self) -> object:
        raise NotImplementedError

    # -- exposition ----------------------------------------------------

    def _label_text(self, key: tuple[str, ...],
                    extra: str = "") -> str:
        pairs = [f'{name}="{_escape_label_value(value)}"'
                 for name, value in zip(self.label_names, key)]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._series):
            lines.extend(self._render_series(key, self._series[key]))
        return lines

    def _render_series(self, key: tuple[str, ...],
                       state: object) -> list[str]:
        raise NotImplementedError

    def snapshot_series(self) -> list[dict]:
        out = []
        for key in sorted(self._series):
            entry: dict = {"labels": dict(zip(self.label_names, key))}
            entry.update(self._snapshot_state(self._series[key]))
            out.append(entry)
        return out

    def _snapshot_state(self, state: object) -> dict:
        raise NotImplementedError


class Counter(_Metric):
    """Monotone accumulator; ``inc`` by any non-negative amount."""

    kind = "counter"

    def _new_state(self) -> list[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add *amount* (>= 0) to the series selected by *labels*."""
        if amount < 0:
            raise MetricError(
                f"{self.name}: counters only go up (got {amount})")
        with self._lock:
            self._state(labels)[0] += amount  # type: ignore[index]

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._state(labels)[0]  # type: ignore[index]

    def _render_series(self, key, state) -> list[str]:
        return [f"{self.name}{self._label_text(key)} "
                f"{_format_value(state[0])}"]

    def _snapshot_state(self, state) -> dict:
        return {"value": state[0]}


class Gauge(_Metric):
    """Point-in-time value; ``set``/``inc``/``dec``."""

    kind = "gauge"

    def _new_state(self) -> list[float]:
        return [0.0]

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._state(labels)[0] = float(value)  # type: ignore[index]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        with self._lock:
            self._state(labels)[0] += amount  # type: ignore[index]

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._state(labels)[0]  # type: ignore[index]

    def _render_series(self, key, state) -> list[str]:
        return [f"{self.name}{self._label_text(key)} "
                f"{_format_value(state[0])}"]

    def _snapshot_state(self, state) -> dict:
        return {"value": state[0]}


class _HistogramState:
    __slots__ = ("counts", "total", "count", "exemplars")

    def __init__(self, buckets: int) -> None:
        self.counts = [0] * buckets  # per-bucket, non-cumulative
        self.total = 0.0
        self.count = 0
        #: per-bucket last exemplar: (labels dict, observed value)
        self.exemplars: list[tuple[dict, float] | None] = \
            [None] * buckets


class Histogram(_Metric):
    """Distribution over fixed half-open ``(lower, upper]`` buckets.

    An observation equal to a boundary lands in the bucket whose upper
    bound it equals (the Prometheus ``le`` convention); anything above
    the last bound lands in the implicit ``+Inf`` bucket.

    ``observe(..., exemplar={...})`` attaches an OpenMetrics-style
    exemplar — the last one per bucket is kept, so storage is O(1)
    per series.  Exemplars are rendered on ``_bucket`` lines only
    when the owning registry was built with ``exemplars=True``
    (``repro serve --exemplars``); recording them is always allowed,
    so instrumentation sites never need to know the flag.
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help_text: str, label_names: tuple[str, ...],
                 buckets: Iterable[float] | None = None) -> None:
        super().__init__(registry, name, help_text, label_names)
        bounds = tuple(float(b) for b in
                       (buckets if buckets is not None
                        else DEFAULT_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise MetricError(
                f"{name}: bucket bounds must be non-empty and "
                f"strictly increasing, got {bounds}")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf bucket is implicit
        self.bounds = bounds

    def _new_state(self) -> _HistogramState:
        return _HistogramState(len(self.bounds) + 1)

    def observe(self, value: float,
                exemplar: Mapping[str, object] | None = None,
                **labels: object) -> None:
        with self._lock:
            state = self._state(labels)
            assert isinstance(state, _HistogramState)
            index = len(self.bounds)
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    index = position
                    break
            state.counts[index] += 1
            state.total += value
            state.count += 1
            if exemplar:
                state.exemplars[index] = (
                    {str(k): str(v) for k, v in exemplar.items()},
                    value)

    @staticmethod
    def _exemplar_text(entry: tuple[dict, float] | None) -> str:
        if entry is None:
            return ""
        exemplar_labels, value = entry
        pairs = ",".join(
            f'{name}="{_escape_label_value(text)}"'
            for name, text in sorted(exemplar_labels.items()))
        return f" # {{{pairs}}} {_format_value(value)}"

    def _render_series(self, key, state: _HistogramState) -> list[str]:
        lines = []
        cumulative = 0
        with_exemplars = self._registry.exemplars
        for index, (bound, count) in enumerate(
                zip((*self.bounds, math.inf), state.counts)):
            cumulative += count
            extra = f'le="{_format_bound(bound)}"'
            suffix = (self._exemplar_text(state.exemplars[index])
                      if with_exemplars else "")
            lines.append(f"{self.name}_bucket"
                         f"{self._label_text(key, extra)} "
                         f"{cumulative}{suffix}")
        lines.append(f"{self.name}_sum{self._label_text(key)} "
                     f"{_format_value(state.total)}")
        lines.append(f"{self.name}_count{self._label_text(key)} "
                     f"{state.count}")
        return lines

    def _snapshot_state(self, state: _HistogramState) -> dict:
        cumulative = 0
        buckets = []
        for bound, count in zip((*self.bounds, math.inf), state.counts):
            cumulative += count
            buckets.append([_format_bound(bound), cumulative])
        return {"count": state.count, "sum": state.total,
                "buckets": buckets}


class MetricsRegistry:
    """Named metrics with shared locking and exposition.

    Declaring the same name twice returns the existing metric when the
    kind, labels and (for histograms) buckets agree, and raises
    :class:`MetricError` otherwise — instrumentation sites can simply
    re-declare what they need.

    >>> registry = MetricsRegistry()
    >>> queries = registry.counter("queries_total", "Total queries.",
    ...                            ("engine",))
    >>> queries.inc(engine="compiled")
    >>> print(registry.render_prometheus())
    # HELP queries_total Total queries.
    # TYPE queries_total counter
    queries_total{engine="compiled"} 1
    <BLANKLINE>
    """

    def __init__(self, max_label_sets: int = 256,
                 exemplars: bool = False) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}
        self.max_label_sets = max_label_sets
        #: render histogram exemplars on ``_bucket`` lines; mutable at
        #: runtime (``repro serve --exemplars`` flips it on).
        self.exemplars = exemplars

    # -- declaration ---------------------------------------------------

    def _declare(self, factory, name: str, help_text: str,
                 label_names: Iterable[str], **kwargs) -> _Metric:
        label_names = tuple(label_names)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not factory
                        or existing.label_names != label_names):
                    raise MetricError(
                        f"{name!r} already declared as "
                        f"{existing.kind} with labels "
                        f"{existing.label_names}")
                return existing
            metric = factory(self, name, help_text, label_names,
                             **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                label_names: Iterable[str] = ()) -> Counter:
        return self._declare(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: Iterable[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help_text, label_names)

    def histogram(self, name: str, help_text: str = "",
                  label_names: Iterable[str] = (),
                  buckets: Iterable[float] | None = None) -> Histogram:
        return self._declare(Histogram, name, help_text, label_names,
                             buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        """The declared metric, or None."""
        with self._lock:
            return self._metrics.get(name)

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._metrics):
                lines.extend(self._metrics[name].render())
            return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """A JSON-ready document of every metric and series."""
        with self._lock:
            return {"metrics": [
                {"name": metric.name, "type": metric.kind,
                 "help": metric.help,
                 "series": metric.snapshot_series()}
                for name, metric in sorted(self._metrics.items())]}

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent,
                          ensure_ascii=False)


# -- minimal text-format parser -------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$")


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    """``a="x",b="y"`` → sorted ((name, unescaped value), …) pairs."""
    pairs = []
    position = 0
    while position < len(text):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[position:])
        if match is None:
            raise ValueError(f"bad label pair at {text[position:]!r}")
        name = match.group(1)
        position += match.end()
        value_chars = []
        while position < len(text):
            char = text[position]
            if char == "\\":
                escape = text[position + 1]
                value_chars.append(
                    {"\\": "\\", '"': '"', "n": "\n"}[escape])
                position += 2
                continue
            if char == '"':
                position += 1
                break
            value_chars.append(char)
            position += 1
        pairs.append((name, "".join(value_chars)))
        if position < len(text) and text[position] == ",":
            position += 1
    return tuple(sorted(pairs))


_EXEMPLAR_RE = re.compile(
    r"^\{(?P<labels>.*)\}\s+(?P<value>\S+)\s*$")


def parse_prometheus_text(text: str, exemplars: dict | None = None
                          ) -> dict:
    """Parse the text exposition format into ``{(name, labels): value}``.

    *labels* is a sorted tuple of (name, value) pairs; histogram
    series appear under their ``_bucket``/``_sum``/``_count`` sample
    names.  Comments and blank lines are skipped.  An OpenMetrics
    exemplar suffix (``… # {query_id="q-1"} 0.004``) is tolerated on
    any sample line; pass a dict as *exemplars* to collect them as
    ``{(name, labels): (exemplar labels dict, value)}``.  This is the
    round-trip half of the exposition tests and the assertion tool of
    ``scripts/serve_smoke.py`` — not a full openmetrics parser.
    """
    samples: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        line, _, exemplar_text = line.partition(" # ")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        raw = match.group("value")
        value = float({"+Inf": "inf", "-Inf": "-inf",
                       "NaN": "nan"}.get(raw, raw))
        labels = _parse_labels(match.group("labels") or "")
        key = (match.group("name"), labels)
        samples[key] = value
        if exemplars is not None and exemplar_text:
            ex_match = _EXEMPLAR_RE.match(exemplar_text.strip())
            if ex_match is None:
                raise ValueError(
                    f"unparseable exemplar: {exemplar_text!r}")
            exemplars[key] = (
                dict(_parse_labels(ex_match.group("labels") or "")),
                float(ex_match.group("value")))
    return samples
