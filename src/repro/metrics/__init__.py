"""Service-level telemetry: thread-safe metrics with Prometheus and
JSON exposition.

See :mod:`repro.metrics.registry` for the core model (counters,
gauges, log-bucket histograms, label sets, cardinality caps) and
:mod:`repro.metrics.instrument` for the standard instrumentation the
session facade and ``repro serve`` feed.  ``docs/observability.md``
documents every exported metric name.
"""

from .instrument import (COUNT_BUCKETS, LATENCY_BUCKETS,
                         export_database_gauges, observe_query,
                         observe_query_error)
from .registry import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                       LabelCardinalityError, MetricError,
                       MetricsRegistry, parse_prometheus_text)

__all__ = [
    "COUNT_BUCKETS", "Counter", "DEFAULT_BUCKETS", "Gauge",
    "Histogram", "LATENCY_BUCKETS", "LabelCardinalityError",
    "MetricError", "MetricsRegistry", "export_database_gauges",
    "observe_query", "observe_query_error", "parse_prometheus_text",
]
