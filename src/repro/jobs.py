"""Background job queue for long-running queries.

The concurrent service (:mod:`repro.service`) still assumes a client
holds its HTTP connection for the whole evaluation — precisely what
the long fixpoints of the paper's unbounded classes cannot offer.
This module splits submission from evaluation:

* :meth:`JobQueue.submit` validates nothing and evaluates nothing: it
  records the query together with the **epoch pinned at submit time**
  (``manager.current`` the moment the job is accepted) and returns a
  :class:`Job` immediately.  Whenever the job actually runs — seconds
  or minutes later, after any number of write batches — it sees the
  database exactly as it was when the client submitted, the same
  snapshot-isolation contract a synchronous query gets from its own
  admission instant.
* A small pool of **worker threads** (bounded; ``--job-workers``)
  drains the queue through the *existing admission gate*:
  each job run is one :meth:`~repro.service.QueryService.run` call,
  so jobs occupy admission slots like any query and synchronous fast
  queries keep flowing through the remaining slots while a long job
  grinds.  Workers wait for a slot (``admit_wait_s``) instead of
  bouncing, so a busy service delays jobs rather than failing them.
* **Status** is observable mid-flight: the job's
  :class:`~repro.engine.stats.EvaluationStats` object is shared with
  the running engine, so :meth:`Job.progress` reads rounds completed
  and rows derived so far while the fixpoint is still looping (the
  read is advisory — no lock is taken against the engine thread).
* **Cancellation** is cooperative: cancelling a queued job just marks
  it; cancelling a running job sets a flag the engines check at round
  boundaries together with the wall-clock deadline
  (:class:`~repro.engine.deadline.Deadline`), so the fixpoint aborts
  at its next natural commit point with
  :class:`~repro.engine.deadline.QueryCancelled`.
* **Results expire**: finished jobs are retained for ``ttl_s``
  seconds and at most ``max_retained`` at once (oldest-finished
  evicted first), so an abandoned job cannot pin a million-row answer
  set forever.

Lifecycle::

    queued ──> running ──> done | timeout | truncated | error
       │           │
       └───────────┴─────> cancelled

Draining (server shutdown) extends the service's drain semantics to
jobs: intake stops, queued jobs are cancelled immediately, running
jobs get the grace period to finish and are cooperatively cancelled
when it expires.
"""

from __future__ import annotations

import queue
import secrets
import threading
from time import perf_counter, time

from .datalog.errors import ReproError
from .engine.deadline import QueryCancelled, QueryTimeout
from .engine.stats import EvaluationStats
from .flight import class_of
from .logutil import new_query_id
from .service import (AdmissionRejected, QueryResult, QueryService,
                      ServiceDraining)

__all__ = ["Job", "JobQueue", "JobQueueFull", "JobStates",
           "UnknownJob"]


class JobQueueFull(ReproError):
    """The backlog of queued jobs is at capacity (map to HTTP 429)."""


class UnknownJob(ReproError):
    """No job with that id exists (never existed, or expired)."""


class JobStates:
    """The job lifecycle vocabulary (also the ``/jobs`` wire values)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    TIMEOUT = "timeout"
    TRUNCATED = "truncated"
    ERROR = "error"
    CANCELLED = "cancelled"

    #: states a job can no longer leave
    FINISHED = frozenset({DONE, TIMEOUT, TRUNCATED, ERROR, CANCELLED})


class Job:
    """One submitted query and everything known about its run.

    Mutable fields are written by the queue/worker under the queue's
    lock; reads from the HTTP poller are either under that lock
    (:meth:`JobQueue.get`) or advisory (:meth:`progress` while
    running).
    """

    __slots__ = ("id", "query", "query_id", "engine", "workers",
                 "backend", "timeout_s", "max_rows", "epoch", "state",
                 "submitted_at", "started_at", "finished_at", "stats",
                 "cancel", "result", "error", "error_status", "trace",
                 "_queue_wait_s", "_run_s")

    def __init__(self, job_id: str, query: str, *, engine: str,
                 workers: int | None, timeout_s: float | None,
                 max_rows: int | None, epoch,
                 query_id: str | None = None,
                 trace: bool = False,
                 backend: str = "auto") -> None:
        self.id = job_id
        self.query = query
        #: the request-scoped id: propagated from the submitting
        #: request, stamped on the run's log line, trace and exemplar
        self.query_id = query_id or new_query_id()
        #: force flight-recorder capture of the run
        self.trace = trace
        self.engine = engine
        self.workers = workers
        #: delta-loop backend the run pins ("auto" lets the engine
        #: pick the vectorised kernel for certified shapes)
        self.backend = backend
        self.timeout_s = timeout_s
        self.max_rows = max_rows
        #: the :class:`~repro.service.Epoch` pinned at submit time —
        #: the run evaluates this snapshot no matter when it starts
        self.epoch = epoch
        self.state = JobStates.QUEUED
        self.submitted_at = time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: live handle shared with the engine once running
        self.stats = EvaluationStats()
        #: cooperative cancel flag, checked at round boundaries
        self.cancel = threading.Event()
        self.result: QueryResult | None = None
        self.error: str | None = None
        #: HTTP status ``/jobs/<id>/result`` should answer for a
        #: failed job (400 for request-shaped errors, 500 otherwise)
        self.error_status: int | None = None
        self._queue_wait_s: float | None = None
        self._run_s: float | None = None

    @property
    def finished(self) -> bool:
        return self.state in JobStates.FINISHED

    def progress(self) -> dict:
        """Advisory mid-flight progress from the live stats object.

        ``rows`` is the number of distinct new tuples the fixpoint has
        committed so far (the sum of per-round delta sizes);
        ``derived`` counts raw derivations before deduplication.  Both
        are written by the engine thread without a lock — a poll may
        observe a value one round stale, never a torn one (ints are
        replaced atomically under the GIL).
        """
        stats = self.stats
        return {"rounds": stats.rounds,
                "rows": sum(stats.delta_sizes),
                "derived": stats.derived}

    def to_dict(self) -> dict:
        """The ``GET /jobs/<id>`` status document."""
        document = {
            "id": self.id,
            "query_id": self.query_id,
            "state": self.state,
            "query": self.query,
            "engine": self.engine,
            "epoch": self.epoch.number,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": self.progress(),
            "cancel_requested": self.cancel.is_set(),
        }
        if self.workers is not None:
            document["workers"] = self.workers
        if self.backend != "auto":
            document["backend"] = self.backend
        if self.timeout_s is not None:
            document["timeout_s"] = self.timeout_s
        if self.max_rows is not None:
            document["max_rows"] = self.max_rows
        if self.error is not None:
            document["error"] = self.error
        if self.result is not None:
            document["answers"] = len(self.result.answers)
            document["duration_s"] = round(self.result.duration_s, 6)
        return document


class JobQueue:
    """Bounded worker pool draining submitted jobs through a service.

    Parameters
    ----------
    service:
        The :class:`~repro.service.QueryService` every job run goes
        through — admission, deadline defaults and epoch bookkeeping
        all come from it.
    workers:
        Worker threads (concurrent job evaluations).  Keep this below
        the service's ``max_inflight`` so synchronous queries always
        have admission headroom around running jobs.
    ttl_s:
        Seconds a finished job (and its result) is retained.
    max_retained:
        Upper bound on finished jobs kept at once; the oldest-finished
        are evicted first when exceeded.
    max_queued:
        Backlog bound; :meth:`submit` raises :class:`JobQueueFull`
        beyond it.
    recorder:
        Optional :class:`~repro.flight.FlightRecorder` shared with
        the server: each job run opens a request context under the
        job's query id, so sampled/forced/slow job evaluations land
        in ``/debug/traces`` exactly like synchronous requests.
    """

    #: how long one admission attempt waits for a slot before the
    #: worker re-checks the job's cancel flag and tries again
    _ADMIT_WAIT_SLICE_S = 0.25

    def __init__(self, service: QueryService, *, workers: int = 2,
                 ttl_s: float = 600.0, max_retained: int = 256,
                 max_queued: int = 64, recorder=None) -> None:
        if workers < 1:
            raise ValueError("job queue needs at least 1 worker")
        if max_retained < 1:
            raise ValueError("max_retained must be at least 1")
        self.service = service
        self.recorder = recorder
        self.workers = workers
        self.ttl_s = ttl_s
        self.max_retained = max_retained
        self.max_queued = max_queued
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._backlog: queue.Queue = queue.Queue()
        self._draining = False
        self._idle = threading.Condition(self._lock)
        self._queued = 0
        self._running = 0
        # plain counters for /healthz, /stats and the smoke's exact
        # reconciliation against the registry
        self.submitted_total = 0
        self.finished_total = 0
        self.outcomes: dict[str, int] = {
            state: 0 for state in sorted(JobStates.FINISHED)}
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-worker-{index}")
            for index in range(workers)]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    @property
    def metrics(self):
        return self.service.metrics

    def submit(self, query: str, *, engine: str = "compiled",
               workers: int | None = None,
               backend: str = "auto",
               timeout_s: float | None = None,
               max_rows: int | None = None,
               query_id: str | None = None,
               trace: bool = False) -> Job:
        """Enqueue a query against the epoch current *right now*.

        Returns the queued :class:`Job` immediately; raises
        :class:`~repro.service.ServiceDraining` during shutdown and
        :class:`JobQueueFull` when the backlog is at capacity.
        *query_id* carries the submitting request's id onto the run
        (minted fresh when ``None``); *trace=True* forces
        flight-recorder capture of the run.
        """
        epoch = self.service.manager.current
        job = Job(f"job-{secrets.token_hex(8)}", query, engine=engine,
                  workers=workers, timeout_s=timeout_s,
                  max_rows=max_rows, epoch=epoch, query_id=query_id,
                  trace=trace, backend=backend)
        with self._lock:
            if self._draining:
                raise ServiceDraining(
                    "service is draining; no new jobs accepted")
            self._purge_locked()
            if self._queued >= self.max_queued:
                raise JobQueueFull(
                    f"{self._queued} jobs queued "
                    f"(limit {self.max_queued})")
            self._jobs[job.id] = job
            self._queued += 1
            self.submitted_total += 1
            self._export_gauges_locked()
            if self.metrics is not None:
                from .metrics.instrument import observe_job_submitted
                observe_job_submitted(self.metrics)
        self._backlog.put(job)
        return job

    # -- lookup --------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job with *job_id*; raises :class:`UnknownJob` when it
        never existed or already expired."""
        with self._lock:
            self._purge_locked()
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJob(f"unknown job {job_id!r} (never "
                                 f"submitted, or expired)")
            return job

    def jobs(self) -> list[Job]:
        """Current jobs, newest submission first."""
        with self._lock:
            self._purge_locked()
            return sorted(self._jobs.values(),
                          key=lambda job: job.submitted_at,
                          reverse=True)

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def running(self) -> int:
        return self._running

    # -- cancellation --------------------------------------------------

    def request_cancel(self, job_id: str) -> Job:
        """Cancel *job_id*: a queued job finishes as ``cancelled`` on
        the spot, a running one gets its cooperative flag set (the
        engines abort at the next round boundary), a finished one is
        returned unchanged (cancelling it is a no-op, not an error).
        """
        with self._lock:
            self._purge_locked()
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJob(f"unknown job {job_id!r} (never "
                                 f"submitted, or expired)")
            job.cancel.set()
            if job.state == JobStates.QUEUED:
                # the worker skips cancelled jobs when it pops them
                self._finish_locked(job, JobStates.CANCELLED,
                                    error="cancelled while queued")
            return job

    # -- drain ---------------------------------------------------------

    def drain(self, grace_s: float = 10.0) -> bool:
        """Stop intake, cancel the backlog, wait out running jobs.

        Queued jobs are cancelled immediately (nobody will ever poll a
        dead server for them); running jobs get up to *grace_s* to
        finish and are cooperatively cancelled when the grace expires
        — the engines abort at their next round boundary, bounded by
        one round's work.  Returns ``True`` when every job reached a
        finished state within the grace.
        """
        deadline = perf_counter() + grace_s
        with self._lock:
            self._draining = True
            for job in self._jobs.values():
                if job.state == JobStates.QUEUED:
                    job.cancel.set()
                    self._finish_locked(job, JobStates.CANCELLED,
                                        error="cancelled by drain")
            while self._running > 0:
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    for job in self._jobs.values():
                        if job.state == JobStates.RUNNING:
                            job.cancel.set()
                    break
                self._idle.wait(remaining)
            # second wait: cancelled running jobs abort at the next
            # round boundary — give them a bounded moment to land
            while self._running > 0:
                remaining = deadline + 5.0 - perf_counter()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    @property
    def draining(self) -> bool:
        return self._draining

    # -- worker loop ---------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._backlog.get()
            if job is None:  # poison pill (tests only)
                return
            with self._lock:
                if job.state != JobStates.QUEUED:
                    continue  # cancelled while queued
                job.state = JobStates.RUNNING
                job.started_at = time()
                job._queue_wait_s = job.started_at - job.submitted_at
                self._queued -= 1
                self._running += 1
                self._export_gauges_locked()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        """One job evaluation: admission, run, outcome bookkeeping."""
        started = perf_counter()
        ctx = (self.recorder.context(job.query_id, query=job.query,
                                     force=job.trace)
               if self.recorder is not None else None)
        try:
            while True:
                if job.cancel.is_set():
                    raise QueryCancelled("job cancelled before "
                                         "admission")
                try:
                    result = self.service.run(
                        job.query, engine=job.engine,
                        workers=job.workers, backend=job.backend,
                        timeout_s=job.timeout_s,
                        max_rows=job.max_rows, epoch=job.epoch,
                        cancel=job.cancel, stats=job.stats,
                        admit_wait_s=self._ADMIT_WAIT_SLICE_S,
                        count_rejection=False, ctx=ctx)
                    break
                except AdmissionRejected:
                    # every slot stayed busy for the whole slice;
                    # re-check the cancel flag and keep waiting — a
                    # queued job prefers lateness over failure
                    continue
        except QueryCancelled as error:
            run_s = perf_counter() - started
            self._close_ctx(job, ctx, "cancelled", run_s)
            self._finish(job, JobStates.CANCELLED, error=str(error),
                         run_s=run_s)
            return
        except QueryTimeout as error:
            run_s = perf_counter() - started
            self._close_ctx(job, ctx, "timeout", run_s)
            self._finish(job, JobStates.TIMEOUT, error=str(error),
                         error_status=408, run_s=run_s)
            return
        except ServiceDraining as error:
            run_s = perf_counter() - started
            self._close_ctx(job, ctx, "cancelled", run_s)
            self._finish(job, JobStates.CANCELLED, error=str(error),
                         run_s=run_s)
            return
        except (ReproError, ValueError) as error:
            run_s = perf_counter() - started
            self._close_ctx(job, ctx, "error", run_s)
            self._finish(job, JobStates.ERROR, error=str(error),
                         error_status=400, run_s=run_s)
            return
        except Exception as error:  # defensive: keep the worker alive
            run_s = perf_counter() - started
            self._close_ctx(job, ctx, "error", run_s)
            self._finish(job, JobStates.ERROR,
                         error=f"{type(error).__name__}: {error}",
                         error_status=500, run_s=run_s)
            return
        run_s = perf_counter() - started
        self._close_ctx(job, ctx, result.outcome, run_s, result)
        state = (JobStates.TRUNCATED if result.outcome == "truncated"
                 else JobStates.DONE)
        self._finish(job, state, result=result, run_s=run_s)

    def _close_ctx(self, job: Job, ctx, outcome: str, run_s: float,
                   result: QueryResult | None = None) -> None:
        """Finalize the job run's flight-recorder context (no-op
        without a recorder)."""
        if ctx is None:
            return
        session = job.epoch.session
        self.recorder.finalize(
            ctx, duration_s=run_s, outcome=outcome,
            engine=job.stats.engine or job.engine,
            formula_class=class_of(session, job.query),
            epoch=job.epoch.number,
            answers=len(result.answers) if result is not None else 0,
            query_log=session.query_log)

    # -- bookkeeping ---------------------------------------------------

    def _finish(self, job: Job, state: str, *,
                result: QueryResult | None = None,
                error: str | None = None,
                error_status: int | None = None,
                run_s: float | None = None) -> None:
        with self._lock:
            job.result = result
            job.error = error
            job.error_status = error_status
            job._run_s = run_s
            self._running -= 1
            self._finish_locked(job, state)
            self._idle.notify_all()

    def _finish_locked(self, job: Job, state: str, *,
                       error: str | None = None) -> None:
        """Transition *job* to a finished *state* under the lock."""
        was_queued = job.state == JobStates.QUEUED
        if error is not None:
            job.error = error
        job.state = state
        job.finished_at = time()
        if was_queued:
            self._queued -= 1
        self.finished_total += 1
        self.outcomes[state] += 1
        self._export_gauges_locked()
        if self.metrics is not None:
            from .metrics.instrument import observe_job_finished
            observe_job_finished(
                self.metrics, outcome=state,
                queue_wait_s=(job._queue_wait_s
                              if job._queue_wait_s is not None
                              else job.finished_at - job.submitted_at),
                run_s=job._run_s)

    def _export_gauges_locked(self) -> None:
        if self.metrics is not None:
            from .metrics.instrument import set_job_gauges
            set_job_gauges(self.metrics, queue_depth=self._queued,
                           running=self._running)

    def _purge_locked(self) -> None:
        """Drop finished jobs past the TTL or beyond the retain cap."""
        now = time()
        finished = [job for job in self._jobs.values() if job.finished]
        for job in finished:
            if now - job.finished_at > self.ttl_s:
                del self._jobs[job.id]
        survivors = [job for job in self._jobs.values()
                     if job.finished]
        overflow = len(survivors) - self.max_retained
        if overflow > 0:
            survivors.sort(key=lambda job: job.finished_at)
            for job in survivors[:overflow]:
                del self._jobs[job.id]
