"""Request-scoped flight recorder: query ids, service phases, traces.

``repro serve`` threads one identity — the *query id* — through every
signal a request touches: the response envelope, the JSON query log,
the metrics exemplars, and the execution trace.  This module provides
the two pieces that tie them together:

``RequestContext``
    Carried alongside a single request (or background job) from
    admission to render.  It records **service-phase spans** — cheap
    ``perf_counter`` pairs for admission wait, epoch pin, engine
    fixpoint, decode, and render — for *every* request, and holds a
    passive :class:`~repro.engine.trace.Tracer` only when the request
    was sampled or capture was forced, so the un-sampled path never
    allocates per-round span objects.

``FlightRecorder``
    A bounded in-memory ring buffer of completed request documents
    (oldest evicted first), plus the capture policy: a seeded
    always-on sampler (``--trace-sample``), per-request forcing
    (``"trace": true`` / async job ``trace`` flag), and unconditional
    capture of anything slower than ``--slow-query-ms``.  Every
    capture is attributed to exactly **one** reason with priority
    forced > sampled > slow, so the reconciliation identity

        ``captured_total == forced_total + sampled_total + slow_total``

    holds by construction and is asserted over the wire by the
    concurrency smoke.

The recorded document wraps the strict PR 3 trace schema rather than
extending it: ``{"query_id", ..., "phases": [...], "trace": {...}}``
keeps :func:`repro.engine.trace.validate_trace_dict` untouched.

Disabled is free: with ``sample_rate == 0``, no slow threshold, and
no forcing, a request allocates no tracer and records nothing beyond
a handful of floats — answers and stats are bit-identical to an
uninstrumented server.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from time import perf_counter, time
from typing import Any

from .engine.trace import Tracer

__all__ = ["FlightRecorder", "RequestContext", "class_of"]


def class_of(session: Any, query: str) -> str:
    """Best-effort formula-class label for ``query`` under ``session``.

    Used for trace summaries; never raises (malformed or unknown
    queries label as ``"unknown"``).
    """
    try:
        from .engine.query import Query

        return session.class_label(Query.parse(query).predicate)
    except Exception:
        return "unknown"


class RequestContext:
    """Per-request carrier for the query id, phase spans, and tracer.

    Create one via :meth:`FlightRecorder.context`; pass it down
    through :meth:`repro.service.QueryService.run`; close it with
    :meth:`FlightRecorder.finalize`.
    """

    __slots__ = ("query_id", "query", "force", "sampled", "tracer",
                 "phases", "started", "_t0")

    def __init__(self, query_id: str, *, query: str | None = None,
                 force: bool = False, sampled: bool = False) -> None:
        self.query_id = query_id
        self.query = query
        self.force = force
        self.sampled = sampled
        # Only sampled/forced requests pay for per-round span capture.
        self.tracer: Tracer | None = (
            Tracer(passive=True) if (force or sampled) else None)
        self.phases: list[dict[str, Any]] = []
        self.started = time()
        self._t0 = perf_counter()

    def add_phase(self, name: str, started: float,
                  ended: float | None = None, **detail: Any) -> None:
        """Record one service phase from ``perf_counter`` timestamps."""
        if ended is None:
            ended = perf_counter()
        span: dict[str, Any] = {
            "name": name,
            "offset_s": started - self._t0,
            "duration_s": ended - started,
        }
        if detail:
            span["detail"] = detail
        self.phases.append(span)

    def phase(self, name: str, **detail: Any) -> "_PhaseTimer":
        """Context manager recording ``name`` around a block."""
        return _PhaseTimer(self, name, detail)


class _PhaseTimer:
    __slots__ = ("_ctx", "_name", "_detail", "_started")

    def __init__(self, ctx: RequestContext, name: str,
                 detail: dict[str, Any]) -> None:
        self._ctx = ctx
        self._name = name
        self._detail = detail

    def __enter__(self) -> "_PhaseTimer":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._ctx.add_phase(self._name, self._started, **self._detail)


class FlightRecorder:
    """Bounded ring buffer of completed request trace documents.

    Thread-safe.  ``capacity`` bounds memory (oldest evicted first);
    ``sample_rate`` in ``[0, 1]`` drives a seeded ``random.Random``
    sampler (decisions are serialised under the lock, so a fixed
    ``seed`` yields a deterministic accept/reject sequence);
    ``slow_query_ms`` forces capture of any request at or above the
    threshold.  ``metrics``, when given, receives a
    ``repro_traces_captured_total{reason}`` counter per capture.
    """

    def __init__(self, capacity: int = 256, *, sample_rate: float = 0.0,
                 slow_query_ms: float | None = None,
                 seed: int | None = None, metrics: Any = None) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample rate must be within [0, 1]")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.slow_query_ms = slow_query_ms
        self.metrics = metrics
        self._sampler = random.Random(seed)
        self._lock = threading.Lock()
        self._ring: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.captured_total = 0
        self.forced_total = 0
        self.sampled_total = 0
        self.slow_total = 0
        self.evicted_total = 0

    # -- request lifecycle -------------------------------------------------

    def context(self, query_id: str, *, query: str | None = None,
                force: bool = False) -> RequestContext:
        """Open a :class:`RequestContext`, rolling the sampler once."""
        sampled = False
        if self.sample_rate > 0.0:
            with self._lock:
                sampled = self._sampler.random() < self.sample_rate
        return RequestContext(query_id, query=query, force=force,
                              sampled=sampled)

    def finalize(self, ctx: RequestContext, *, duration_s: float,
                 outcome: str, engine: str | None = None,
                 formula_class: str | None = None,
                 epoch: int | None = None, answers: int = 0,
                 query_log: Any = None) -> str | None:
        """Close ``ctx`` and capture it if policy says so.

        Returns the capture reason (``"forced"``/``"sampled"``/
        ``"slow"``) or ``None``.  A request slower than
        ``slow_query_ms`` additionally emits a ``slow_query`` event on
        ``query_log`` whatever the capture reason.
        """
        slow = (self.slow_query_ms is not None
                and duration_s * 1000.0 >= self.slow_query_ms)
        if ctx.force:
            reason = "forced"
        elif ctx.sampled:
            reason = "sampled"
        elif slow:
            reason = "slow"
        else:
            reason = None
        if slow and query_log is not None:
            query_log.log(event="slow_query", query_id=ctx.query_id,
                          query=ctx.query, engine=engine,
                          formula_class=formula_class, outcome=outcome,
                          duration_s=duration_s,
                          threshold_ms=self.slow_query_ms)
        if reason is None:
            return None
        trace = ctx.tracer.trace if ctx.tracer is not None else None
        document = {
            "query_id": ctx.query_id,
            "query": ctx.query,
            "engine": engine,
            "formula_class": formula_class,
            "outcome": outcome,
            "epoch": epoch,
            "answers": answers,
            "duration_s": duration_s,
            "captured_reason": reason,
            "ts": ctx.started,
            "phases": list(ctx.phases),
            "trace": trace.to_dict() if trace is not None else None,
        }
        with self._lock:
            self.captured_total += 1
            if reason == "forced":
                self.forced_total += 1
            elif reason == "sampled":
                self.sampled_total += 1
            else:
                self.slow_total += 1
            if ctx.query_id in self._ring:
                # A client re-used an id; latest capture wins, nothing
                # is evicted.
                del self._ring[ctx.query_id]
            elif len(self._ring) >= self.capacity:
                self._ring.popitem(last=False)
                self.evicted_total += 1
            self._ring[ctx.query_id] = document
        if self.metrics is not None:
            self.metrics.counter(
                "repro_traces_captured_total",
                "Requests captured by the flight recorder by reason.",
                ("reason",)).inc(1, reason=reason)
        return reason

    # -- inspection --------------------------------------------------------

    def get(self, query_id: str) -> dict[str, Any] | None:
        """Full recorded document for ``query_id``, or ``None``."""
        with self._lock:
            return self._ring.get(query_id)

    def summaries(self) -> list[dict[str, Any]]:
        """Newest-first one-line summaries of every retained trace."""
        with self._lock:
            documents = list(self._ring.values())
        out = []
        for doc in reversed(documents):
            out.append({
                "query_id": doc["query_id"],
                "engine": doc["engine"],
                "formula_class": doc["formula_class"],
                "outcome": doc["outcome"],
                "duration_s": doc["duration_s"],
                "answers": doc["answers"],
                "captured_reason": doc["captured_reason"],
                "phases": {span["name"]: span["duration_s"]
                           for span in doc["phases"]},
            })
        return out

    def stats(self) -> dict[str, Any]:
        """Counters + configuration, for ``/stats`` and ``/debug/traces``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "sample_rate": self.sample_rate,
                "slow_query_ms": self.slow_query_ms,
                "retained": len(self._ring),
                "captured_total": self.captured_total,
                "forced_total": self.forced_total,
                "sampled_total": self.sampled_total,
                "slow_total": self.slow_total,
                "evicted_total": self.evicted_total,
            }

    def report(self) -> dict[str, Any]:
        """The ``GET /debug/traces`` body: counters + summaries."""
        body = self.stats()
        body["traces"] = self.summaries()
        return body
