"""An interactive deductive-database shell.

``python -m repro shell`` drops into a small REPL over a
:class:`~repro.session.DeductiveDatabase`:

* ``P(x, y) :- A(x, z), P(z, y).`` — add a rule;
* ``A(a, b).``                     — add a fact;
* ``?- P(a, Y).``                  — run a query;
* dot-commands: ``.help``, ``.rules``, ``.facts``, ``.classify P``,
  ``.explain P(a, Y)``, ``.prove P(a, Y)``, ``.advise P``,
  ``.load file``, ``.save dir``, ``.quit``.

The shell is line-oriented and side-effect free until a statement
parses, so typos never corrupt the session.
"""

from __future__ import annotations

import sys
from typing import Callable, TextIO

from .core.advisor import capability_table
from .core.report import text_table
from .datalog.errors import ReproError
from .datalog.parser import parse_program
from .engine.query import Query
from .engine.stats import EvaluationStats
from .ra.io import save_database
from .session import DeductiveDatabase

PROMPT = "repro> "
BANNER = ("repro shell — rules end with '.', queries start with '?-', "
          "'.help' lists commands")


class Shell:
    """The REPL state machine (I/O injected for testability)."""

    def __init__(self, stdin: TextIO | None = None,
                 stdout: TextIO | None = None) -> None:
        self._in = stdin or sys.stdin
        self._out = stdout or sys.stdout
        self._session = DeductiveDatabase()
        self._commands: dict[str, Callable[[str], None]] = {
            "help": self._cmd_help,
            "rules": self._cmd_rules,
            "facts": self._cmd_facts,
            "classify": self._cmd_classify,
            "explain": self._cmd_explain,
            "prove": self._cmd_prove,
            "advise": self._cmd_advise,
            "load": self._cmd_load,
            "save": self._cmd_save,
        }

    # -- plumbing -----------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self._out)

    def run(self) -> int:
        """Read-eval-print until EOF or ``.quit``; returns exit code."""
        self._print(BANNER)
        while True:
            self._out.write(PROMPT)
            self._out.flush()
            line = self._in.readline()
            if not line:
                self._print()
                return 0
            if not self.handle(line.strip()):
                return 0

    def handle(self, line: str) -> bool:
        """Process one input line; False means quit."""
        if not line or line.startswith(("%", "#")):
            return True
        if line in (".quit", ".exit", ".q"):
            return False
        try:
            if line.startswith("."):
                name, _, argument = line[1:].partition(" ")
                command = self._commands.get(name)
                if command is None:
                    self._print(f"unknown command .{name} "
                                f"(try .help)")
                else:
                    command(argument.strip())
            elif line.startswith("?-"):
                self._query(line)
            else:
                self._statement(line)
        except ReproError as error:
            self._print(f"error: {error}")
        except OSError as error:
            self._print(f"error: {error}")
        return True

    # -- statements ------------------------------------------------------

    def _statement(self, line: str) -> None:
        if not line.endswith("."):
            line += "."
        program = parse_program(line)
        for rule in program.rules:
            self._session.add_rule(rule)
            self._print(f"ok: rule {rule}")
        for fact in program.facts:
            self._session.add_fact(
                fact.predicate,
                *(t.value for t in fact.constants))
            self._print(f"ok: fact {fact}")

    def _query(self, line: str) -> None:
        program = parse_program(line if line.endswith(".")
                                else line + ".")
        for goal in program.queries:
            query = Query.from_atom(goal)
            stats = EvaluationStats()
            answers = self._session.query(query, stats=stats)
            for row in sorted(answers, key=repr):
                values = ", ".join(str(v) for v in row)
                self._print(f"{query.predicate}({values})")
            self._print(f"-- {len(answers)} answers "
                        f"({stats.probes} probes)")

    # -- dot commands ------------------------------------------------------

    def _cmd_help(self, _: str) -> None:
        self._print(
            "statements:  P(x, y) :- A(x, z), P(z, y).   add a rule\n"
            "             A(a, b).                        add a fact\n"
            "             ?- P(a, Y).                     query\n"
            "commands:    .rules .facts .classify P "
            ".explain P(a, Y)\n"
            "             .prove P(a, Y) .advise P .load FILE "
            ".save DIR .quit")

    def _cmd_rules(self, _: str) -> None:
        rules = self._session.program.rules
        if not rules:
            self._print("(no rules)")
        for rule in rules:
            self._print(str(rule))

    def _cmd_facts(self, _: str) -> None:
        db = self._session._edb
        rows = [[name, db.count(name)] for name in db.relation_names]
        if not rows:
            self._print("(no facts)")
        else:
            self._print(text_table(["relation", "facts"], rows))

    def _cmd_classify(self, argument: str) -> None:
        if not argument:
            self._print("usage: .classify <predicate>")
            return
        result = self._session.classification(argument)
        self._print(result.describe())
        row = result.summary_row()
        self._print(f"stable={row['stable']} "
                    f"transformable={row['transformable']} "
                    f"bounded={row['bounded']}")

    def _cmd_explain(self, argument: str) -> None:
        if not argument:
            self._print("usage: .explain P(a, Y)")
            return
        self._print(self._session.explain(argument))

    def _cmd_prove(self, argument: str) -> None:
        if not argument:
            self._print("usage: .prove P(a, Y)")
            return
        derivations = self._session.prove(argument, limit=1)
        if not derivations:
            self._print("no matching answers")
            return
        self._print(derivations[0].render())

    def _cmd_advise(self, argument: str) -> None:
        if not argument:
            self._print("usage: .advise <predicate>")
            return
        system = self._session.system_for(argument)
        if system is None:
            self._print(f"{argument} is not recursive")
            return
        self._print(capability_table(system))

    def _cmd_load(self, argument: str) -> None:
        with open(argument, encoding="utf-8") as handle:
            text = handle.read()
        self._session.load(text)
        program = parse_program(text)
        self._print(f"loaded {len(program.rules)} rules, "
                    f"{len(program.facts)} facts")
        for goal in program.queries:
            self._query(f"?- {goal}.")

    def _cmd_save(self, argument: str) -> None:
        save_database(self._session.materialise(), argument)
        self._print(f"saved materialised database to {argument}/")


def run_shell() -> int:
    """Entry point used by the CLI."""
    return Shell().run()
