"""Structured JSON query logging: one line per query, machine-first.

The third observability signal (trace = one query in depth, metrics =
process-lifetime aggregates, logs = the event stream): every query
answered through an instrumented session emits exactly one JSON object
on its own line — ``query_id``, engine, formula class, rounds,
duration, outcome — so a long-running ``repro serve`` process can be
tailed, grepped and joined against the metrics without a log-parsing
framework.  ``--log-json FILE`` on the CLI enables it (``-`` for
stderr).

No :mod:`logging` configuration is involved: handlers and levels are
application policy, and a query log that silently vanishes because the
root logger was reconfigured is worse than none.  A
:class:`QueryLogger` owns its stream, locks around writes (the serve
handler is threaded) and flushes per line so ``tail -f`` works.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import sys
import threading
import time
from typing import IO

__all__ = ["QueryLogger", "new_query_id", "open_query_log",
           "valid_query_id"]

_COUNTER = itertools.count()

# Ids a client may propagate via ``X-Repro-Query-Id``: a conservative
# charset keeps them safe to echo in headers, JSON, log lines and
# ``/debug/traces/<id>`` URL paths.
_QUERY_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


def new_query_id() -> str:
    """A short process-unique query id (pid + monotone counter)."""
    return f"q-{os.getpid()}-{next(_COUNTER)}"


def valid_query_id(value: object) -> bool:
    """Whether *value* is acceptable as a client-supplied query id."""
    return isinstance(value, str) and bool(_QUERY_ID_RE.match(value))


class QueryLogger:
    """Writes one JSON object per line to a stream, thread-safely.

    >>> import io
    >>> logger = QueryLogger(io.StringIO())
    >>> logger.log(event="query", query_id="q-1", outcome="ok")
    >>> json.loads(logger.stream.getvalue())["event"]
    'query'
    """

    def __init__(self, stream: IO[str],
                 close_on_exit: bool = False) -> None:
        self.stream = stream
        self._close = close_on_exit
        self._lock = threading.Lock()

    def log(self, **fields: object) -> None:
        """Emit one event; a ``ts`` (unix seconds) is added unless
        the caller provided one."""
        fields.setdefault("ts", round(time.time(), 6))
        line = json.dumps(fields, ensure_ascii=False, sort_keys=True,
                          default=str)
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()

    def close(self) -> None:
        if self._close:
            self.stream.close()


def open_query_log(path: str) -> QueryLogger:
    """A :class:`QueryLogger` on *path* (``-`` means stderr).

    Lines are appended, so restarting a server keeps the history.
    """
    if path == "-":
        return QueryLogger(sys.stderr)
    return QueryLogger(open(path, "a", encoding="utf-8"),
                       close_on_exit=True)
