"""repro — Classification of Recursive Formulas in Deductive Databases.

A complete reproduction of Youn, Henschen & Han (SIGMOD 1988): the
I-graph model for linear recursive Datalog rules, the classification
of recursive formulas (one-directional / bounded / unbounded cycles,
acyclic, dependent, mixed), the stability and boundedness theorems,
and compiled query-evaluation plans — together with the substrates a
deductive database needs to run them: a Datalog front end, a
relational-algebra layer with an indexed fact store, and three
evaluation engines (naive, semi-naive, compiled).

Quickstart
----------
>>> from repro import parse_system, classify, compile_query
>>> system = parse_system("P(x, y) :- A(x, z), P(z, y).")
>>> classification = classify(system)
>>> classification.is_strongly_stable
True
>>> compile_query(system, "dv").plan_text
'σE,  ∪k≥0 [σA^k-E]'

>>> from repro import Database, Query, CompiledEngine
>>> db = Database.from_dict({"A": [("a", "b"), ("b", "c")],
...                          "P__exit": [("c", "c")]})
>>> sorted(CompiledEngine().evaluate(system, db, Query.parse("P(a, Y)")))
[('a', 'c')]
"""

from .core import (Boundedness, Classification, CompiledFormula,
                   ComponentClass, FormulaClass, StabilityReport, Strategy,
                   adornment_from_string, adornment_to_string,
                   binding_sequence, classification_table, classify,
                   compile_query, formula_dossier, is_semantically_stable,
                   is_syntactically_stable, stability_report,
                   to_nonrecursive, to_stable)
from .datalog import (Atom, Constant, DatalogSyntaxError, Program,
                      RecursionSystem, RecursiveRule, ReproError, Rule,
                      RuleValidationError, Variable, atom, fact,
                      parse_program, parse_rule, parse_system)
from .engine import (CompiledEngine, EvaluationStats, NaiveEngine, Query,
                     SemiNaiveEngine)
from .graphs import (IGraph, ReducedGraph, ResolutionGraph, ascii_figure,
                     build_igraph, reduce_graph, resolution_graph)
from .logutil import QueryLogger
from .metrics import MetricsRegistry
from .ra import AnswerSet, Database, Relation
from .session import DeductiveDatabase

__version__ = "1.0.0"

__all__ = [
    "AnswerSet",
    "Atom", "Boundedness", "Classification", "CompiledEngine",
    "CompiledFormula", "ComponentClass", "Constant", "Database", "DeductiveDatabase",
    "DatalogSyntaxError", "EvaluationStats", "FormulaClass", "IGraph",
    "MetricsRegistry", "NaiveEngine", "Program", "Query",
    "QueryLogger", "RecursionSystem",
    "RecursiveRule", "ReducedGraph", "Relation", "ReproError",
    "ResolutionGraph", "Rule", "RuleValidationError",
    "SemiNaiveEngine", "StabilityReport", "Strategy", "Variable",
    "adornment_from_string", "adornment_to_string", "ascii_figure",
    "atom", "binding_sequence", "build_igraph", "classification_table",
    "classify", "compile_query", "fact", "formula_dossier",
    "is_semantically_stable", "is_syntactically_stable", "parse_program",
    "parse_rule", "parse_system", "reduce_graph", "resolution_graph",
    "stability_report", "to_nonrecursive", "to_stable",
]
