"""A small textual front end for the paper's rule language.

Grammar (comments start with ``%`` or ``#`` and run to end of line)::

    program   := statement*
    statement := rule | fact
    rule      := atom ":-" atom (("," | "∧" | "&") atom)* "."
    fact      := atom "."            -- must be ground
    atom      := IDENT "(" term ("," term)* ")" | IDENT
    term      := IDENT | NUMBER | STRING

Following the paper (which forbids constants inside recursive rules and
writes variables in lower case), bare identifiers inside a *rule* are
variables, while bare identifiers inside a *fact* are constants.
Numbers and single-quoted strings are always constants.

>>> rule = parse_rule("P(x, y) :- A(x, z), P(z, y).")
>>> str(rule)
'P(x, y) :- A(x, z) ∧ P(z, y).'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .atoms import Atom
from .errors import DatalogSyntaxError
from .program import Program, RecursionSystem
from .rules import RecursiveRule, Rule
from .terms import Constant, Term, Variable

_PUNCT = {":-": "IMPLIES", "?-": "QUERY", ",": "COMMA",
          "(": "LPAREN", ")": "RPAREN", ".": "DOT", "∧": "COMMA",
          "&": "COMMA"}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> Iterator[_Token]:
    line, column = 1, 1
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            column += 1
            i += 1
            continue
        if ch in "%#":
            while i < len(text) and text[i] != "\n":
                i += 1
            continue
        if text.startswith(":-", i):
            yield _Token("IMPLIES", ":-", line, column)
            i += 2
            column += 2
            continue
        if text.startswith("?-", i):
            yield _Token("QUERY", "?-", line, column)
            i += 2
            column += 2
            continue
        if ch in _PUNCT:
            yield _Token(_PUNCT[ch], ch, line, column)
            i += 1
            column += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise DatalogSyntaxError("unterminated string", line, column)
            yield _Token("STRING", text[i + 1:end], line, column)
            column += end - i + 1
            i = end + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < len(text)
                            and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < len(text) and (text[i].isdigit() or text[i] == "."):
                i += 1
            word = text[start:i]
            kind = "NUMBER"
            yield _Token(kind, word, line, column)
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < len(text) and (text[i].isalnum()
                                     or text[i] in "_'"):
                i += 1
            yield _Token("IDENT", text[start:i], line, column)
            column += i - start
            continue
        raise DatalogSyntaxError(f"unexpected character {ch!r}", line, column)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._pos = 0

    # -- token plumbing ----------------------------------------------

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self, kind: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise DatalogSyntaxError("unexpected end of input")
        if kind is not None and token.kind != kind:
            raise DatalogSyntaxError(
                f"expected {kind}, found {token.text!r}",
                token.line, token.column)
        self._pos += 1
        return token

    @property
    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- grammar -----------------------------------------------------

    def term(self, mode: str) -> Term:
        """One term; *mode* decides how bare identifiers read.

        ``rule``: identifiers are variables (the paper forbids
        constants in rules); ``fact``: identifiers are constants;
        ``query``: capitalised identifiers and ``_`` are variables
        (free slots), everything else a constant.
        """
        token = self._next()
        if token.kind == "IDENT":
            if mode == "rule":
                return Variable(token.text)
            if mode == "query" and (token.text[0].isupper()
                                    or token.text.startswith("_")):
                return Variable(token.text)
            return Constant(token.text)
        if token.kind == "NUMBER":
            value = float(token.text) if "." in token.text else int(token.text)
            return Constant(value)
        if token.kind == "STRING":
            return Constant(token.text)
        raise DatalogSyntaxError(
            f"expected a term, found {token.text!r}",
            token.line, token.column)

    def atom(self, mode: str) -> Atom:
        name = self._next("IDENT")
        token = self._peek()
        if token is None or token.kind != "LPAREN":
            return Atom(name.text, ())
        self._next("LPAREN")
        args = [self.term(mode)]
        while self._peek() is not None and self._peek().kind == "COMMA":
            self._next("COMMA")
            args.append(self.term(mode))
        self._next("RPAREN")
        return Atom(name.text, tuple(args))

    def statement(self) -> "Rule | Atom | tuple[str, Atom]":
        token = self._peek()
        if token is not None and token.kind == "QUERY":
            # ?- P(a, Y).  — capitalised names are free slots
            self._next("QUERY")
            goal = self.atom(mode="query")
            self._next("DOT")
            return ("query", goal)
        start = self._pos
        head = self.atom(mode="rule")
        token = self._peek()
        if token is not None and token.kind == "IMPLIES":
            self._next("IMPLIES")
            body = [self.atom(mode="rule")]
            while self._peek() is not None and self._peek().kind == "COMMA":
                self._next("COMMA")
                body.append(self.atom(mode="rule"))
            self._next("DOT")
            return Rule(head, tuple(body))
        # A bare atom is a fact: re-parse its terms as constants.
        self._pos = start
        ground = self.atom(mode="fact")
        self._next("DOT")
        return ground

    def program(self) -> Program:
        rules: list[Rule] = []
        facts: list[Atom] = []
        queries: list[Atom] = []
        while not self.at_end:
            parsed = self.statement()
            if isinstance(parsed, Rule):
                rules.append(parsed)
            elif isinstance(parsed, tuple):
                queries.append(parsed[1])
            else:
                facts.append(parsed)
        return Program(tuple(rules), tuple(facts), tuple(queries))


def parse_atom(text: str, in_rule: bool = True) -> Atom:
    """Parse a single atom; *in_rule* selects variable vs constant idents."""
    parser = _Parser(text)
    parsed = parser.atom("rule" if in_rule else "fact")
    if not parser.at_end:
        raise DatalogSyntaxError(f"trailing input after atom: {text!r}")
    return parsed


def parse_rule(text: str) -> Rule:
    """Parse a single rule (with terminating dot optional).

    >>> str(parse_rule("P(x, y) :- A(x, z), P(z, y)"))
    'P(x, y) :- A(x, z) ∧ P(z, y).'
    """
    if not text.rstrip().endswith("."):
        text = text.rstrip() + "."
    parser = _Parser(text)
    parsed = parser.statement()
    if not parser.at_end:
        raise DatalogSyntaxError(f"trailing input after rule: {text!r}")
    if not isinstance(parsed, Rule):
        raise DatalogSyntaxError(f"expected a rule, found a fact: {text!r}")
    return parsed


def parse_program(text: str) -> Program:
    """Parse a full program of rules and ground facts."""
    return _Parser(text).program()


def parse_system(text: str, strict: bool = True) -> RecursionSystem:
    """Parse a program and package it as a :class:`RecursionSystem`.

    The program must contain exactly one linear recursive rule; every
    other rule for the same predicate becomes an exit rule.  When no
    exit rule is given, the generic exit ``P__exit`` is synthesised.

    >>> system = parse_system("P(x, y) :- A(x, z), P(z, y).")
    >>> system.predicate
    'P'
    """
    program = parse_program(text)
    recursive_rules = program.recursive_rules()
    if len(recursive_rules) != 1:
        raise DatalogSyntaxError(
            f"expected exactly one recursive rule, found "
            f"{len(recursive_rules)}")
    recursive = RecursiveRule(recursive_rules[0], strict=strict)
    exits = tuple(r for r in program.rules_for(recursive.predicate)
                  if not r.is_recursive())
    return RecursionSystem(recursive, exits)
