"""Substitutions, unification, and rule renaming.

These are the mechanics behind the paper's *expansion* (unfolding)
operation: the k-th expansion of a recursive rule is obtained by
renumbering the rule's variables and unifying its head with the
recursive body atom of the (k-1)-st expansion.  Because the language is
function-free, unification is just consistent variable/constant
matching — no occurs check is needed.
"""

from __future__ import annotations

from typing import Mapping

from .atoms import Atom
from .rules import Rule
from .terms import Constant, Term, Variable

#: A substitution maps variables to terms.
Substitution = Mapping[Variable, Term]


def apply_to_term(subst: Substitution, term: Term) -> Term:
    """Apply *subst* to a single term (identity on constants)."""
    if isinstance(term, Variable):
        return subst.get(term, term)
    return term


def apply_to_atom(subst: Substitution, atom: Atom) -> Atom:
    """Apply *subst* to every argument of *atom*."""
    return atom.with_args(apply_to_term(subst, t) for t in atom.args)


def apply_to_rule(subst: Substitution, rule: Rule) -> Rule:
    """Apply *subst* to the head and every body atom of *rule*."""
    return Rule(apply_to_atom(subst, rule.head),
                tuple(apply_to_atom(subst, a) for a in rule.body))


def compose(first: Substitution, second: Substitution) -> dict[Variable, Term]:
    """Return the substitution equivalent to applying *first* then *second*.

    >>> x, y, z = Variable("x"), Variable("y"), Variable("z")
    >>> composed = compose({x: y}, {y: z})
    >>> composed[x]
    Variable(name='z')
    """
    out: dict[Variable, Term] = {
        var: apply_to_term(second, term) for var, term in first.items()}
    for var, term in second.items():
        out.setdefault(var, term)
    return out


def unify_terms(left: Term, right: Term,
                subst: dict[Variable, Term]) -> bool:
    """Extend *subst* (in place) to unify *left* with *right*.

    Returns False when unification fails; *subst* may then contain
    partial bindings and must be discarded by the caller.
    """
    left = apply_to_term(subst, left)
    right = apply_to_term(subst, right)
    if left == right:
        return True
    if isinstance(left, Variable):
        subst[left] = right
        _normalise(subst)
        return True
    if isinstance(right, Variable):
        subst[right] = left
        _normalise(subst)
        return True
    return False  # two distinct constants


def _normalise(subst: dict[Variable, Term]) -> None:
    """Resolve chains so every binding maps to a fully applied term."""
    for var in list(subst):
        term = subst[var]
        seen = {var}
        while isinstance(term, Variable) and term in subst:
            if term in seen:  # pragma: no cover - cycles cannot arise
                break
            seen.add(term)
            term = subst[term]
        subst[var] = term


def unify_atoms(left: Atom, right: Atom) -> dict[Variable, Term] | None:
    """Most general unifier of two atoms, or None when they don't unify.

    >>> from .atoms import atom
    >>> mgu = unify_atoms(atom("P", "x", "y"), atom("P", "z", "u"))
    >>> sorted(str(v) for v in mgu)
    ['x', 'y']
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    subst: dict[Variable, Term] = {}
    for left_term, right_term in zip(left.args, right.args):
        if not unify_terms(left_term, right_term, subst):
            return None
    return subst


def match_atom(pattern: Atom, ground: Atom) -> dict[Variable, Constant] | None:
    """One-way matching of a possibly-open *pattern* against a ground atom.

    Unlike unification this never binds variables of *ground* (there are
    none) and is what fact retrieval uses.
    """
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    bindings: dict[Variable, Constant] = {}
    for pattern_term, ground_term in zip(pattern.args, ground.args):
        if isinstance(pattern_term, Constant):
            if pattern_term != ground_term:
                return None
        else:
            assert isinstance(ground_term, Constant)
            bound = bindings.get(pattern_term)
            if bound is None:
                bindings[pattern_term] = ground_term
            elif bound != ground_term:
                return None
    return bindings


def rename_rule(rule: Rule, level: int) -> Rule:
    """Rename every variable of *rule* with an expansion-level subscript.

    This is the paper's "renumbering of variables" step: the second
    I-graph of ``P(x, y) :- A(x, z) ∧ P(z, u) ∧ B(u, y)`` is built from
    the copy over ``x_1, y_1, z_1, u_1``.
    """
    subst: dict[Variable, Term] = {
        var: var.renamed(level) for var in rule.variables}
    return apply_to_rule(subst, rule)
