"""Paper-style pretty-printing of rules and expansion traces.

The paper writes expansions with subscripted variables (``z₁``, ``u₁``);
the renaming machinery produces ``z_1``, ``u_1``.  These helpers render
either form and produce the multi-line expansion traces shown in the
paper's Example 2 and Example 4.
"""

from __future__ import annotations

from .program import RecursionSystem
from .rules import Rule

_SUBSCRIPTS = str.maketrans("0123456789", "₀₁₂₃₄₅₆₇₈₉")


def subscript(name: str) -> str:
    """Render trailing ``_k`` renaming suffixes as unicode subscripts.

    >>> subscript("z_1")
    'z₁'
    >>> subscript("x1")
    'x₁'
    >>> subscript("x1_2")
    'x₁,₂'
    """
    pieces = [p for p in name.split("_") if p]
    if not pieces:
        return name
    out = _render_piece(pieces[0])
    for piece in pieces[1:]:
        if piece.isdigit() and not out[-1].isdigit():
            # a plain stem followed by one renaming level: u_1 -> u₁
            separator = "" if out[-1] not in "₀₁₂₃₄₅₆₇₈₉" else ","
            out += separator + piece.translate(_SUBSCRIPTS)
        else:
            out += "," + _render_piece(piece)
    return out


def _render_piece(piece: str) -> str:
    stem = piece.rstrip("0123456789")
    digits = piece[len(stem):]
    return stem + digits.translate(_SUBSCRIPTS)


def format_rule(rule: Rule, subscripted: bool = True) -> str:
    """Render a rule in the paper's notation.

    >>> from .parser import parse_rule
    >>> format_rule(parse_rule("P(x1, y) :- A(x1, z), P(z, y)."))
    'P(x₁, y) :- A(x₁, z) ∧ P(z, y).'
    """
    text = str(rule)
    if not subscripted:
        return text
    # Only variable names carry subscripts; predicate names in the
    # catalogue are single upper-case letters and never end in digits
    # preceded by lower-case stems, so a token-wise pass is safe.
    out: list[str] = []
    token = ""
    for ch in text:
        if ch.isalnum() or ch in "_'":
            token += ch
        else:
            if token:
                out.append(_format_token(token))
                token = ""
            out.append(ch)
    if token:
        out.append(_format_token(token))
    return "".join(out)


def _format_token(token: str) -> str:
    if token[0].islower():
        return subscript(token)
    return token


def expansion_trace(system: RecursionSystem, depth: int,
                    subscripted: bool = True) -> str:
    """The first *depth* expansions of *system*, one per line.

    This reproduces the derivation listings of the paper's Example 2
    (s2a → s2c) and Example 4 (s4a → s4c → s4d).
    """
    lines = []
    for k in range(1, depth + 1):
        rendered = format_rule(system.expansion(k), subscripted)
        lines.append(f"expansion {k}: {rendered}")
    return "\n".join(lines)
