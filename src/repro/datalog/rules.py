"""Horn rules and the paper's restricted recursive-rule form.

A :class:`Rule` is a function-free Horn clause ``head :- body``.  The
paper restricts attention to *linear single recursion*: one recursive
rule in which the recursive predicate occurs exactly once in the body,
plus one or more non-recursive *exit* rules ``P :- E``.

:class:`RecursiveRule` wraps a validated recursive rule and exposes the
pieces the graph model needs: the head atom, the single recursive body
atom, and the non-recursive body atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .atoms import Atom
from .errors import RuleValidationError
from .terms import Constant, Term, Variable


@dataclass(frozen=True, slots=True)
class Rule:
    """A Horn clause ``head :- body[0] ∧ ... ∧ body[n-1]``.

    An empty body makes the rule a fact-producing clause (used for exit
    rules only via the textual front end; facts proper are ground
    atoms stored in the EDB).
    """

    head: Atom
    body: tuple[Atom, ...]

    @property
    def predicates(self) -> frozenset[str]:
        """All predicate symbols occurring in the rule."""
        return frozenset({self.head.predicate}
                         | {a.predicate for a in self.body})

    @property
    def variables(self) -> frozenset[Variable]:
        """All distinct variables occurring in the rule."""
        out: set[Variable] = set(self.head.variables)
        for body_atom in self.body:
            out.update(body_atom.variables)
        return frozenset(out)

    def body_atoms_of(self, predicate: str) -> tuple[Atom, ...]:
        """The body atoms whose predicate symbol is *predicate*."""
        return tuple(a for a in self.body if a.predicate == predicate)

    def is_recursive(self) -> bool:
        """True iff the head predicate also occurs in the body."""
        return any(a.predicate == self.head.predicate for a in self.body)

    def is_linear_recursive(self) -> bool:
        """True iff the head predicate occurs exactly once in the body."""
        return len(self.body_atoms_of(self.head.predicate)) == 1

    def is_range_restricted(self) -> bool:
        """True iff every head variable also occurs in the body.

        This is the [Gall 84] condition the paper adopts; rules failing
        it cannot be evaluated bottom-up over a finite database.
        """
        body_vars: set[Variable] = set()
        for body_atom in self.body:
            body_vars.update(body_atom.variables)
        return all(v in body_vars for v in self.head.variables)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        inner = " ∧ ".join(str(a) for a in self.body)
        return f"{self.head} :- {inner}."

    def __iter__(self) -> Iterator[Atom]:
        yield self.head
        yield from self.body


class RecursiveRule:
    """A validated linear recursive rule in the paper's restricted form.

    Validation (section 2 of the paper) enforces:

    * the head predicate occurs exactly once in the body (linearity);
    * the rule is function-free by construction (terms are variables or
      constants) and contains no constants;
    * no variable occurs more than once under either occurrence of the
      recursive predicate;
    * the rule is range restricted.

    Parameters
    ----------
    rule:
        The underlying Horn clause.
    strict:
        When False, skip the range-restriction check (some of the
        paper's own examples, e.g. (s8) and (s10), introduce body
        variables that never reach the head; those are fine.  Range
        restriction concerns *head* variables and is always enforced;
        ``strict`` additionally rejects body recursive-atom variables
        that are fresh and unconnected, a condition the paper calls out
        when discussing non-range-restricted formulas).
    """

    def __init__(self, rule: Rule, strict: bool = True) -> None:
        self._rule = rule
        self._validate(strict)

    # -- validation --------------------------------------------------

    def _validate(self, strict: bool) -> None:
        rule = self._rule
        recursive_atoms = rule.body_atoms_of(rule.head.predicate)
        if len(recursive_atoms) != 1:
            raise RuleValidationError(
                f"expected exactly one occurrence of the recursive "
                f"predicate {rule.head.predicate!r} in the body, found "
                f"{len(recursive_atoms)}: {rule}")
        recursive_atom = recursive_atoms[0]
        if recursive_atom.arity != rule.head.arity:
            raise RuleValidationError(
                f"recursive predicate used with inconsistent arities "
                f"({rule.head.arity} in head, {recursive_atom.arity} in "
                f"body): {rule}")
        for term in rule.head.args + tuple(
                t for a in rule.body for t in a.args):
            if isinstance(term, Constant):
                raise RuleValidationError(
                    f"constants are not allowed in recursive rules "
                    f"(found {term}): {rule}")
        if rule.head.has_repeated_variables():
            raise RuleValidationError(
                f"a variable appears more than once under the recursive "
                f"predicate (head): {rule}")
        if recursive_atom.has_repeated_variables():
            raise RuleValidationError(
                f"a variable appears more than once under the recursive "
                f"predicate (body): {rule}")
        if strict and not rule.is_range_restricted():
            raise RuleValidationError(
                f"rule is not range restricted (a head variable does "
                f"not occur in the body): {rule}")

    # -- accessors ---------------------------------------------------

    @property
    def rule(self) -> Rule:
        """The underlying Horn clause."""
        return self._rule

    @property
    def head(self) -> Atom:
        """The consequent atom ``P(x1, ..., xn)``."""
        return self._rule.head

    @property
    def predicate(self) -> str:
        """The recursive predicate symbol."""
        return self._rule.head.predicate

    @property
    def recursive_atom(self) -> Atom:
        """The single body occurrence of the recursive predicate."""
        return self._rule.body_atoms_of(self.predicate)[0]

    @property
    def nonrecursive_atoms(self) -> tuple[Atom, ...]:
        """The body atoms over non-recursive (EDB) predicates."""
        return tuple(a for a in self._rule.body
                     if a.predicate != self.predicate)

    @property
    def dimension(self) -> int:
        """The paper's *dimension* D: arity of the recursive predicate."""
        return self._rule.head.arity

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        """Head argument variables ``x1 .. xn`` in positional order."""
        return tuple(t for t in self.head.args if isinstance(t, Variable))

    @property
    def body_recursive_variables(self) -> tuple[Variable, ...]:
        """Recursive body-atom variables ``y1 .. yn`` in positional order."""
        return tuple(t for t in self.recursive_atom.args
                     if isinstance(t, Variable))

    def __str__(self) -> str:
        return str(self._rule)

    def __repr__(self) -> str:
        return f"RecursiveRule({self._rule!s})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecursiveRule):
            return NotImplemented
        return self._rule == other._rule

    def __hash__(self) -> int:
        return hash(self._rule)


def make_rule(head: Atom, body: Iterable[Atom]) -> Rule:
    """Build a :class:`Rule`, normalising *body* to a tuple."""
    return Rule(head, tuple(body))


def exit_rule(predicate: str, exit_predicate: str, arity: int) -> Rule:
    """Build the generic exit rule ``P(x1..xn) :- E(x1..xn)``.

    The paper writes exit rules as ``P :- E`` with ``E`` a generic exit
    expression; this helper produces the positional identity form used
    throughout the compiled formulas.
    """
    variables: tuple[Term, ...] = tuple(
        Variable(f"x{i + 1}") for i in range(arity))
    return Rule(Atom(predicate, variables),
                (Atom(exit_predicate, variables),))
