"""Exception hierarchy for the Datalog substrate.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can catch one base class.  The sub-classes distinguish the
three failure families a deductive-database front end actually has:
malformed syntax, semantically invalid rules (violations of the paper's
restrictions on linear recursive formulas), and evaluation-time problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class DatalogSyntaxError(ReproError):
    """A textual program could not be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class RuleValidationError(ReproError):
    """A rule violates the paper's restrictions on recursive formulas.

    The paper (section 2) considers function-free Horn clauses with

    * exactly one occurrence of the recursive predicate in the body
      (linear recursion),
    * no constants and no equality in the recursive rule,
    * no repeated variables under the recursive predicate,
    * range restriction (every head variable appears in the body).

    Violations of any of these raise this error with a message naming
    the restriction.
    """


class EvaluationError(ReproError):
    """Raised when a query cannot be evaluated against an EDB."""


class SchemaError(ReproError):
    """Raised on relation arity/schema mismatches in the RA substrate."""
