"""Datalog substrate: terms, atoms, rules, programs, parsing, unification.

This package implements the function-free Horn-clause language the
paper analyses, including the linear single-recursion systems
(:class:`RecursionSystem`) that the graph model and the classifier
operate on.
"""

from .atoms import Atom, atom, fact
from .errors import (DatalogSyntaxError, EvaluationError, ReproError,
                     RuleValidationError, SchemaError)
from .program import Program, RecursionSystem
from .pretty import expansion_trace, format_rule, subscript
from .rules import RecursiveRule, Rule, exit_rule, make_rule
from .terms import Constant, Term, Variable, fresh_variables
from .unify import (Substitution, apply_to_atom, apply_to_rule,
                    apply_to_term, compose, match_atom, rename_rule,
                    unify_atoms, unify_terms)
from .parser import parse_atom, parse_program, parse_rule, parse_system

__all__ = [
    "Atom", "Constant", "DatalogSyntaxError", "EvaluationError",
    "Program", "RecursionSystem", "RecursiveRule", "ReproError", "Rule",
    "RuleValidationError", "SchemaError", "Substitution", "Term",
    "Variable", "apply_to_atom", "apply_to_rule", "apply_to_term",
    "atom", "compose", "exit_rule", "expansion_trace", "fact",
    "format_rule", "fresh_variables", "make_rule", "match_atom",
    "parse_atom", "parse_program", "parse_rule", "parse_system",
    "rename_rule", "subscript", "unify_atoms", "unify_terms",
]
