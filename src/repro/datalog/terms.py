"""Terms of the function-free Datalog language.

The paper works with function-free Horn clauses, so a term is either a
:class:`Variable` or a :class:`Constant`.  Both are immutable value
objects: two variables with the same name are the same variable, which
is exactly the identification the I-graph construction relies on
(vertices of the graph *are* variable names).

Variable naming convention
--------------------------
The textual parser follows the paper rather than Prolog: identifiers
are lower case (``x``, ``y1``, ``z2``) and whether a symbol denotes a
variable or a constant is decided by position — everything inside a
*rule* is a variable (the paper forbids constants in recursive rules),
while symbols inside *facts* and *query* bindings are constants.  The
programmatic API is explicit and never guesses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_']*\Z")


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable, identified by its name.

    >>> Variable("x") == Variable("x")
    True
    >>> Variable("x").renamed(2)
    Variable(name='x_2')
    """

    name: str

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"invalid variable name: {self.name!r}")

    def renamed(self, level: int) -> "Variable":
        """Return a fresh copy subscripted for expansion *level*.

        Used when unfolding a rule against itself: the paper renumbers
        variables (``x`` becomes ``x_1``) before unification so the two
        copies of the rule share no variables.
        """
        return Variable(f"{self.name}_{level}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A database constant (any hashable Python value).

    >>> str(Constant("a"))
    'a'
    >>> str(Constant(42))
    '42'
    """

    value: object

    def __str__(self) -> str:
        return str(self.value)


#: A Datalog term is a variable or a constant.
Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return True iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True iff *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def variables_of(terms: tuple[Term, ...]) -> tuple[Variable, ...]:
    """Return the variables among *terms*, in order, with duplicates."""
    return tuple(t for t in terms if isinstance(t, Variable))


def fresh_variables(count: int, prefix: str = "v") -> tuple[Variable, ...]:
    """Return *count* distinct variables named ``prefix0 .. prefixN``."""
    return tuple(Variable(f"{prefix}{i}") for i in range(count))
