"""Atoms (predicate applications) of the Datalog language.

An :class:`Atom` is a predicate symbol applied to a tuple of terms,
``A(x, z)`` or ``P(z, y)``.  Atoms are immutable and hashable so they
can be used as dictionary keys during unification and as members of
rule bodies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .terms import Constant, Term, Variable


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to terms: ``pred(args[0], ..., args[n-1])``.

    >>> a = Atom("A", (Variable("x"), Variable("z")))
    >>> str(a)
    'A(x, z)'
    >>> a.arity
    2
    """

    predicate: str
    args: tuple[Term, ...]

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """The variable arguments, in positional order, with duplicates."""
        return tuple(t for t in self.args if isinstance(t, Variable))

    @property
    def constants(self) -> tuple[Constant, ...]:
        """The constant arguments, in positional order."""
        return tuple(t for t in self.args if isinstance(t, Constant))

    @property
    def is_ground(self) -> bool:
        """True iff the atom contains no variables (i.e. it is a fact)."""
        return all(isinstance(t, Constant) for t in self.args)

    def variable_set(self) -> frozenset[Variable]:
        """The set of distinct variables occurring in the atom."""
        return frozenset(self.variables)

    def has_repeated_variables(self) -> bool:
        """True iff some variable occurs in more than one position.

        The paper forbids repeated variables under the *recursive*
        predicate; callers check this per-atom where required.
        """
        seen: set[Variable] = set()
        for term in self.args:
            if isinstance(term, Variable):
                if term in seen:
                    return True
                seen.add(term)
        return False

    def positions_of(self, variable: Variable) -> tuple[int, ...]:
        """0-based argument positions at which *variable* occurs."""
        return tuple(i for i, t in enumerate(self.args) if t == variable)

    def with_args(self, args: Iterable[Term]) -> "Atom":
        """A copy of this atom with *args* substituted in."""
        return Atom(self.predicate, tuple(args))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate}({inner})"

    def __iter__(self) -> Iterator[Term]:
        return iter(self.args)


def atom(predicate: str, *names: object) -> Atom:
    """Convenience constructor building an atom of variables.

    Strings become :class:`Variable`; any other value becomes a
    :class:`Constant`.  This matches the paper's notation where rules
    are written over lower-case variable names.

    >>> str(atom("A", "x", "z"))
    'A(x, z)'
    """
    terms: list[Term] = []
    for name in names:
        if isinstance(name, (Variable, Constant)):
            terms.append(name)
        elif isinstance(name, str):
            terms.append(Variable(name))
        else:
            terms.append(Constant(name))
    return Atom(predicate, tuple(terms))


def fact(predicate: str, *values: object) -> Atom:
    """Convenience constructor building a ground atom of constants.

    >>> str(fact("A", "a", "b"))
    'A(a, b)'
    """
    return Atom(predicate, tuple(Constant(v) for v in values))
