"""Programs and the paper's single-linear-recursion systems.

A :class:`Program` is a bag of rules plus ground facts.  The paper's
setting (section 2) is one recursive rule with one or more exit rules;
:class:`RecursionSystem` packages exactly that and implements the
*expansion* (unfolding) operation used to build resolution graphs and
the stable-transformation of Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .atoms import Atom
from .errors import RuleValidationError
from .rules import RecursiveRule, Rule
from .unify import apply_to_rule, rename_rule, unify_atoms


@dataclass(frozen=True)
class Program:
    """A set of rules and ground facts.

    Facts are ground atoms; rules are Horn clauses.  The class offers
    the bookkeeping queries (IDB/EDB split, recursive-rule discovery)
    that the front end and the engines share.
    """

    rules: tuple[Rule, ...] = ()
    facts: tuple[Atom, ...] = ()
    #: goal atoms from ``?-`` statements (variables mark free slots)
    queries: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        for ground_fact in self.facts:
            if not ground_fact.is_ground:
                raise RuleValidationError(
                    f"facts must be ground atoms: {ground_fact}")

    @property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by at least one rule head."""
        return frozenset(r.head.predicate for r in self.rules)

    @property
    def edb_predicates(self) -> frozenset[str]:
        """Predicates that occur only in rule bodies or facts."""
        used: set[str] = {f.predicate for f in self.facts}
        for rule in self.rules:
            used.update(a.predicate for a in rule.body)
        return frozenset(used - self.idb_predicates)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """All rules whose head predicate is *predicate*."""
        return tuple(r for r in self.rules if r.head.predicate == predicate)

    def recursive_rules(self) -> tuple[Rule, ...]:
        """All rules whose head predicate recurs in their body."""
        return tuple(r for r in self.rules if r.is_recursive())

    def with_facts(self, facts: Iterable[Atom]) -> "Program":
        """A copy of the program with *facts* appended."""
        return Program(self.rules, self.facts + tuple(facts),
                       self.queries)

    def dependency_graph(self) -> dict[str, frozenset[str]]:
        """IDB predicate → the IDB predicates its rules depend on."""
        idb = self.idb_predicates
        out: dict[str, set[str]] = {p: set() for p in idb}
        for rule in self.rules:
            for body_atom in rule.body:
                if body_atom.predicate in idb:
                    out[rule.head.predicate].add(body_atom.predicate)
        return {p: frozenset(deps) for p, deps in out.items()}

    def evaluation_order(self) -> tuple[str, ...]:
        """A bottom-up order of the IDB predicates.

        Self-recursion is fine (it stays within one stratum); *mutual*
        recursion across distinct predicates is outside the paper's
        single-recursion setting and is rejected.
        """
        graph = {p: deps - {p} for p, deps in
                 self.dependency_graph().items()}
        order: list[str] = []
        ready = sorted(p for p, deps in graph.items() if not deps)
        pending = {p: set(deps) for p, deps in graph.items() if deps}
        while ready:
            predicate = ready.pop(0)
            order.append(predicate)
            released = []
            for other, deps in pending.items():
                deps.discard(predicate)
                if not deps:
                    released.append(other)
            for other in sorted(released):
                del pending[other]
                ready.append(other)
        if pending:
            cycle = ", ".join(sorted(pending))
            raise RuleValidationError(
                f"mutually recursive predicates are not supported "
                f"(the paper assumes single recursion): {cycle}")
        return tuple(order)

    def __str__(self) -> str:
        lines = [str(r) for r in self.rules]
        lines += [f"{f}." for f in self.facts]
        return "\n".join(lines)


class RecursionSystem:
    """One linear recursive rule together with its exit rules.

    This is the unit of analysis of the whole paper: the I-graph, the
    classification, the stability transformation and the compiled
    formulas are all derived from a ``RecursionSystem``.

    Parameters
    ----------
    recursive:
        The (validated) recursive rule.
    exits:
        One or more non-recursive rules for the same predicate.  When
        omitted, the generic exit ``P(x̄) :- P__exit(x̄)`` is synthesised
        — the paper likewise writes a generic exit expression ``E`` and
        "does not bother to write the exit rule in the examples".
    """

    #: suffix used for synthesised generic exit predicates
    EXIT_SUFFIX = "__exit"

    def __init__(self, recursive: RecursiveRule | Rule,
                 exits: Sequence[Rule] = ()) -> None:
        if isinstance(recursive, Rule):
            recursive = RecursiveRule(recursive)
        self._recursive = recursive
        if not exits:
            exits = (self._generic_exit(),)
        self._exits = tuple(exits)
        self._validate_exits()

    def _generic_exit(self) -> Rule:
        head = self._recursive.head
        return Rule(head, (Atom(self.predicate + self.EXIT_SUFFIX,
                                head.args),))

    def _validate_exits(self) -> None:
        for rule in self._exits:
            if rule.head.predicate != self.predicate:
                raise RuleValidationError(
                    f"exit rule head must be {self.predicate!r}: {rule}")
            if rule.head.arity != self._recursive.dimension:
                raise RuleValidationError(
                    f"exit rule arity mismatch "
                    f"({rule.head.arity} != {self._recursive.dimension}): "
                    f"{rule}")
            if rule.is_recursive():
                raise RuleValidationError(
                    f"exit rules must be non-recursive: {rule}")
            if not rule.is_range_restricted():
                raise RuleValidationError(
                    f"exit rule is not range restricted: {rule}")

    # -- accessors ---------------------------------------------------

    @property
    def recursive(self) -> RecursiveRule:
        """The recursive rule."""
        return self._recursive

    @property
    def exits(self) -> tuple[Rule, ...]:
        """The exit rules (at least one)."""
        return self._exits

    @property
    def predicate(self) -> str:
        """The recursive predicate symbol."""
        return self._recursive.predicate

    @property
    def dimension(self) -> int:
        """Arity of the recursive predicate (the paper's D)."""
        return self._recursive.dimension

    @property
    def exit_predicates(self) -> frozenset[str]:
        """EDB predicates used by the exit rules."""
        preds: set[str] = set()
        for rule in self._exits:
            preds.update(a.predicate for a in rule.body)
        return frozenset(preds)

    @property
    def edb_predicates(self) -> frozenset[str]:
        """All EDB predicates used anywhere in the system."""
        preds = set(self.exit_predicates)
        preds.update(a.predicate
                     for a in self._recursive.nonrecursive_atoms)
        return frozenset(preds)

    def program(self) -> Program:
        """The system as a plain :class:`Program` (for the engines)."""
        return Program((self._recursive.rule,) + self._exits)

    # -- expansion (unfolding) ----------------------------------------

    def expansion(self, k: int) -> Rule:
        """The k-th expansion of the recursive rule (k ≥ 1).

        The 1st expansion is the rule itself.  The k-th expansion is
        obtained from the (k-1)-st by renaming the rule's variables with
        subscript ``k-1``, unifying the renamed head with the recursive
        body atom, and splicing in the renamed body — exactly the
        construction of the paper's Example 2.

        >>> from .parser import parse_rule
        >>> system = RecursionSystem(RecursiveRule(parse_rule(
        ...     "P(x, y) :- A(x, z), P(z, u), B(u, y).")))
        >>> print(system.expansion(2))
        P(x, y) :- A(x, z) ∧ A(z, z_1) ∧ P(z_1, u_1) ∧ B(u_1, u) ∧ B(u, y).
        """
        if k < 1:
            raise ValueError(f"expansion level must be >= 1, got {k}")
        expanded = self._recursive.rule
        for level in range(1, k):
            expanded = self._resolve_once(expanded, level)
        return expanded

    def _resolve_once(self, expanded: Rule, level: int) -> Rule:
        """Resolve *expanded*'s recursive atom with a renamed rule copy."""
        renamed = rename_rule(self._recursive.rule, level)
        recursive_atom = next(
            a for a in expanded.body if a.predicate == self.predicate)
        mgu = unify_atoms(renamed.head, recursive_atom)
        assert mgu is not None, "renamed head must unify with the call"
        new_body: list[Atom] = []
        for body_atom in expanded.body:
            if body_atom is recursive_atom:
                new_body.extend(
                    apply_to_rule(mgu, renamed).body)
            else:
                new_body.append(body_atom)
        return apply_to_rule(mgu, Rule(expanded.head, tuple(new_body)))

    def exit_expansion(self, k: int, exit_index: int = 0) -> Rule:
        """The k-th expansion with the recursive atom replaced by an exit.

        ``exit_expansion(1)`` is the exit rule itself (zero applications
        of the recursive rule); ``exit_expansion(k)`` for k ≥ 2 applies
        the recursive rule ``k-1`` times and closes with the chosen exit
        — the non-recursive formulas the paper writes as (s8a'), (s8b').
        """
        if k < 1:
            raise ValueError(f"exit expansion level must be >= 1, got {k}")
        exit_clause = self._exits[exit_index]
        if k == 1:
            return exit_clause
        expanded = self.expansion(k - 1)
        renamed_exit = rename_rule(exit_clause, k - 1)
        recursive_atom = next(
            a for a in expanded.body if a.predicate == self.predicate)
        mgu = unify_atoms(renamed_exit.head, recursive_atom)
        assert mgu is not None
        new_body: list[Atom] = []
        for body_atom in expanded.body:
            if body_atom is recursive_atom:
                new_body.extend(apply_to_rule(mgu, renamed_exit).body)
            else:
                new_body.append(body_atom)
        return apply_to_rule(mgu, Rule(expanded.head, tuple(new_body)))

    def unfolded(self, times: int) -> "RecursionSystem":
        """The system unfolded *times* times (Theorem 2's transformation).

        Following the paper's statement for a cycle of weight n
        ("unfolding exactly n times"): the new recursive rule is the
        n-th expansion and the exit set contains, for every original
        exit, the exit expansions of depths ``1 .. n`` — the original
        exit plus the first ``n-1`` expansions with the recursive atom
        replaced by that exit.  The result is logically equivalent to
        the original system: the new rule advances the recursion in
        strides of n while the n exits cover the depth residues
        ``0 .. n-1``.

        ``unfolded(1)`` is the system itself (stride 1, original exit).
        """
        if times < 1:
            raise ValueError(f"unfold count must be >= 1, got {times}")
        if times == 1:
            return self
        new_recursive = RecursiveRule(self.expansion(times))
        new_exits: list[Rule] = []
        for exit_index in range(len(self._exits)):
            for depth in range(1, times + 1):
                new_exits.append(self.exit_expansion(depth, exit_index))
        return RecursionSystem(new_recursive, tuple(new_exits))

    def __str__(self) -> str:
        lines = [str(self._recursive.rule)]
        lines += [str(r) for r in self._exits]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RecursionSystem({self._recursive.rule!s})"
