"""CI smoke: concurrent clients against ``repro serve``, reconciled.

End-to-end over a real subprocess and real sockets, in two phases:

1. **mixed load** — 16 client threads each run a scripted request mix
   (five engines; recursive classes A1 and A5, a non-recursive view,
   an EDB lookup; one deliberate row-limit truncation and one
   deliberate zero-budget timeout per pass) against a server with the
   default admission gate.  Assert **zero 5xx** across every response,
   correct answers on every 200, and that the admission/outcome
   counters in ``GET /metrics`` — ``repro_queries_total`` by outcome,
   ``repro_queries_rejected_total``, ``repro_queries_timed_out_total``,
   the in-flight gauge — reconcile *exactly* with the per-response
   tallies the clients kept.  The server runs with
   ``--trace-sample 0.5 --trace-buffer 32`` so the flight recorder
   samples and evicts under real concurrency; its identity
   ``captured = forced + sampled + slow`` and the ring bound are
   asserted over the wire;
2. **forced contention** — a fresh server with ``--max-inflight 1``
   and a disabled recorder (``--trace-sample 0``), which must stay
   empty — zero captures, no retained traces;
   four barrier-synchronised clients fire simultaneous free-closure
   queries until at least one is turned away, then the client-side 429
   count must equal ``repro_queries_rejected_total`` exactly and every
   429 must carry ``Retry-After``.  Finally SIGTERM must produce a
   clean exit (code 0) and a terminal ``server_shutdown`` log line
   with ``drained: true``.

Exits non-zero on the first violation.

Usage::

    PYTHONPATH=src python scripts/concurrency_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
sys.path.insert(0, SRC)

from repro.metrics import parse_prometheus_text  # noqa: E402

CHAIN = 40  # nodes n0 … n40
THREADS = 16

A_EDGES = [(f"n{i}", f"n{i + 1}") for i in range(CHAIN)]
B_EDGES = A_EDGES


def _program_text() -> str:
    lines = [
        "P(x, y) :- A(x, z), P(z, y).",   # class A5 (transitive closure)
        "P(x, y) :- A(x, y).",
        "Q(x, y) :- A(x, z), Q(z, u), B(u, y).",   # class A1
        "Q(x, y) :- B(x, y).",
        "V(x, y) :- A(x, y).",            # non-recursive view
    ]
    lines += [f"A({x}, {y})." for x, y in A_EDGES]
    lines += [f"B({x}, {y})." for x, y in B_EDGES]
    return "\n".join(lines) + "\n"


def _closure(edges) -> frozenset:
    reach = set(edges)
    while True:
        grown = {(x, w) for (x, y) in reach
                 for (z, w) in reach if y == z} - reach
        if not grown:
            return frozenset(reach)
        reach |= grown


def _q_fixpoint() -> frozenset:
    total = set(B_EDGES)
    while True:
        grown = {(x, y)
                 for (x, z) in A_EDGES
                 for (z2, u) in total if z2 == z
                 for (u2, y) in B_EDGES if u2 == u} - total
        if not grown:
            return frozenset(total)
        total |= grown


P_CLOSURE = _closure(A_EDGES)
Q_CLOSURE = _q_fixpoint()

#: the per-thread request mix: (document, expected full answer set or
#: None when the request must not complete normally)
def _request_mix():
    return [
        ({"query": "P(n0, Y)"},
         {p for p in P_CLOSURE if p[0] == "n0"}),
        ({"query": "P(X, Y)", "engine": "semi-naive"}, P_CLOSURE),
        ({"query": "Q(X, Y)", "engine": "naive"}, Q_CLOSURE),
        ({"query": "P(n0, Y)", "engine": "top-down"},
         {p for p in P_CLOSURE if p[0] == "n0"}),
        ({"query": "P(X, Y)", "workers": 0}, P_CLOSURE),
        ({"query": "V(X, Y)"}, set(A_EDGES)),
        ({"query": "A(n0, Y)"}, {("n0", "n1")}),
        # row budget: a query shape asked *only* with the budget, so
        # the (never-cached) truncated evaluation happens every time
        ({"query": "P(n1, Y)", "max_rows": 1}, None),
        # zero budget: again a dedicated shape so no cache hit can
        # short-circuit the deadline
        ({"query": "Q(n0, Y)", "timeout_s": 0}, None),
    ]


def _post(base: str, document: dict):
    """(status, body, headers) without raising on HTTP errors.

    Transient connection resets (the OS dropping a connect under a
    thundering herd) are retried — they are a client/kernel artefact,
    not a server response, and the reconciliation counts responses.
    """
    request = urllib.request.Request(
        base + "/query", json.dumps(document).encode("utf-8"),
        {"Content-Type": "application/json"})
    for attempt in range(5):
        try:
            with urllib.request.urlopen(request,
                                        timeout=60) as response:
                return response.status, json.loads(response.read()), \
                    dict(response.headers)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), \
                dict(error.headers)
        except (ConnectionResetError, ConnectionRefusedError):
            if attempt == 4:
                raise
            time.sleep(0.05 * (attempt + 1))


def _get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return json.loads(response.read())


def _metrics(base: str) -> dict:
    with urllib.request.urlopen(base + "/metrics",
                                timeout=60) as response:
        return parse_prometheus_text(response.read().decode("utf-8"))


def _series_sum(samples: dict, name: str, **labels: str) -> float:
    want = set(labels.items())
    return sum(v for (n, pairs), v in samples.items()
               if n == name and want <= set(pairs))


def _boot(program: str, *args: str, log_path: str | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro", "serve", program,
            "--port", "0", *args]
    if log_path is not None:
        argv += ["--log-json", log_path]
    process = subprocess.Popen(argv, stdout=subprocess.PIPE,
                               stderr=subprocess.PIPE, text=True,
                               env=env)
    banner = process.stdout.readline().strip()
    assert banner.startswith("serving on http://"), banner
    return process, banner.split("serving on ", 1)[1]


def _phase_mixed_load(base: str) -> int:
    failures = 0
    responses: list[tuple[int, dict, object]] = []
    lock = threading.Lock()

    def client(seed: int) -> None:
        local = []
        mix = _request_mix()
        for offset in range(len(mix)):
            document, expected = mix[(seed + offset) % len(mix)]
            # retry rejected requests so the deliberate-outcome
            # requests (truncation, timeout) always land; every
            # attempt is tallied and must reconcile
            for _ in range(200):
                status, body, _ = _post(base, document)
                local.append((status, body, expected))
                if status != 429:
                    break
                time.sleep(0.02)
        with lock:
            responses.extend(local)

    pool = [threading.Thread(target=client, args=(i,))
            for i in range(THREADS)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    tally = {"ok": 0, "truncated": 0, 408: 0, 429: 0}
    for status, body, expected in responses:
        if status >= 500:
            print(f"5xx response: {status} {body}", file=sys.stderr)
            failures += 1
        elif status == 200:
            outcome = body["outcome"]
            tally[outcome if outcome in tally else "ok"] += 1
            if outcome == "truncated":
                answers = {tuple(r) for r in body["answers"]}
                if not (answers < P_CLOSURE and len(answers) >= 1):
                    print("truncated answers are not a proper "
                          "non-empty subset", file=sys.stderr)
                    failures += 1
            elif expected is not None:
                answers = {tuple(r) for r in body["answers"]}
                if answers != expected:
                    print(f"{body['query']}: wrong answers "
                          f"({len(answers)} rows, expected "
                          f"{len(expected)})", file=sys.stderr)
                    failures += 1
        elif status in (408, 429):
            tally[status] += 1
        else:
            print(f"unexpected status {status}: {body}",
                  file=sys.stderr)
            failures += 1

    # the deliberate outcomes landed once per thread per pass
    if tally["truncated"] != THREADS:
        print(f"expected {THREADS} truncated responses, saw "
              f"{tally['truncated']}", file=sys.stderr)
        failures += 1
    if tally[408] != THREADS:
        print(f"expected {THREADS} timeouts (408), saw {tally[408]}",
              file=sys.stderr)
        failures += 1

    # -- /metrics must reconcile exactly with the client tallies ------
    samples = _metrics(base)
    checks = [
        ("repro_queries_total{outcome=ok}",
         _series_sum(samples, "repro_queries_total", outcome="ok"),
         tally["ok"]),
        ("repro_queries_total{outcome=truncated}",
         _series_sum(samples, "repro_queries_total",
                     outcome="truncated"), tally["truncated"]),
        ("repro_queries_total{outcome=timeout}",
         _series_sum(samples, "repro_queries_total",
                     outcome="timeout"), tally[408]),
        ("repro_queries_timed_out_total",
         _series_sum(samples, "repro_queries_timed_out_total"),
         tally[408]),
        ("repro_queries_rejected_total",
         _series_sum(samples, "repro_queries_rejected_total"),
         tally[429]),
        ("repro_queries_total{outcome=error}",
         _series_sum(samples, "repro_queries_total",
                     outcome="error"), 0),
        ("repro_query_errors_total",
         _series_sum(samples, "repro_query_errors_total"), 0),
        ("repro_inflight_queries (quiesced)",
         _series_sum(samples, "repro_inflight_queries"), 0),
    ]
    for name, got, expected in checks:
        if got != expected:
            print(f"{name}: metrics say {got}, responses sum to "
                  f"{expected}", file=sys.stderr)
            failures += 1

    health = _get_json(base, "/healthz")
    reconciled = [
        ("healthz.queries_served", health["queries_served"],
         tally["ok"] + tally["truncated"]),
        ("healthz.admitted_total", health["admitted_total"],
         tally["ok"] + tally["truncated"] + tally[408]),
        ("healthz.rejected_total", health["rejected_total"],
         tally[429]),
        ("healthz.inflight", health["inflight"], 0),
    ]
    for name, got, expected in reconciled:
        if got != expected:
            print(f"{name}: {got} != {expected}", file=sys.stderr)
            failures += 1
    # -- flight recorder reconciles exactly under concurrency --------
    report = _get_json(base, "/debug/traces")
    identity = (report["forced_total"] + report["sampled_total"]
                + report["slow_total"])
    if report["captured_total"] != identity:
        print(f"recorder identity broken: captured "
              f"{report['captured_total']} != forced+sampled+slow "
              f"{identity}", file=sys.stderr)
        failures += 1
    if report["captured_total"] == 0:
        print("sampling at 0.5 captured nothing", file=sys.stderr)
        failures += 1
    retained = min(report["captured_total"], 32)
    if len(report["traces"]) != retained or \
            report["retained"] != retained:
        print(f"ring holds {report['retained']} traces, expected "
              f"{retained} (capacity 32)", file=sys.stderr)
        failures += 1
    if report["evicted_total"] != report["captured_total"] - retained:
        print(f"evicted_total {report['evicted_total']} != captured "
              f"- retained", file=sys.stderr)
        failures += 1
    # capture finalises before the response is written, so with every
    # client drained the registry counter agrees exactly
    metered = _series_sum(samples, "repro_traces_captured_total")
    if metered != report["captured_total"]:
        print(f"repro_traces_captured_total {metered} != recorder's "
              f"own count {report['captured_total']}", file=sys.stderr)
        failures += 1

    total = len(responses)
    print(f"phase 1: {total} responses from {THREADS} threads — "
          f"{tally['ok']} ok, {tally['truncated']} truncated, "
          f"{tally[408]} timed out, {tally[429]} rejected; "
          f"zero 5xx; /metrics reconcile exactly; recorder captured "
          f"{report['captured_total']} ({report['retained']} "
          f"retained) with the identity exact")
    return failures


def _phase_contention(base: str) -> int:
    failures = 0
    rejected = 0
    fivehundreds = 0
    retry_after_missing = 0
    for _ in range(50):
        barrier = threading.Barrier(4)
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def fire() -> None:
            nonlocal retry_after_missing
            barrier.wait()
            status, body, headers = _post(base, {"query": "P(X, Y)"})
            if status == 429 and "Retry-After" not in headers:
                with lock:
                    retry_after_missing += 1
            with lock:
                results.append((status, body))

        pool = [threading.Thread(target=fire) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        rejected += sum(1 for s, _ in results if s == 429)
        fivehundreds += sum(1 for s, _ in results if s >= 500)
        if rejected:
            break
    if rejected == 0:
        print("max-inflight 1 never produced a 429 under "
              "simultaneous load", file=sys.stderr)
        failures += 1
    if fivehundreds:
        print(f"{fivehundreds} 5xx responses under contention",
              file=sys.stderr)
        failures += 1
    if retry_after_missing:
        print("429 without a Retry-After header", file=sys.stderr)
        failures += 1
    samples = _metrics(base)
    metered = _series_sum(samples, "repro_queries_rejected_total")
    if metered != rejected:
        print(f"repro_queries_rejected_total: metrics say {metered}, "
              f"clients saw {rejected}", file=sys.stderr)
        failures += 1
    # this server runs with --trace-sample 0 and no slow threshold:
    # the recorder must have stayed completely inert
    report = _get_json(base, "/debug/traces")
    if report["captured_total"] != 0 or report["traces"]:
        print(f"disabled recorder captured "
              f"{report['captured_total']} trace(s)", file=sys.stderr)
        failures += 1
    print(f"phase 2: forced contention rejected {rejected} "
          f"request(s), all with Retry-After, reconciled exactly; "
          f"disabled recorder stayed empty")
    return failures


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "mixed.dl")
        with open(program, "w", encoding="utf-8") as handle:
            handle.write(_program_text())

        process, base = _boot(program, "--trace-sample", "0.5",
                              "--trace-buffer", "32")
        try:
            failures += _phase_mixed_load(base)
        finally:
            process.terminate()
            process.wait(timeout=30)

        log_path = os.path.join(workdir, "queries.jsonl")
        process, base = _boot(program, "--max-inflight", "1",
                              "--trace-sample", "0",
                              log_path=log_path)
        try:
            failures += _phase_contention(base)
        finally:
            process.terminate()
            process.wait(timeout=30)
        if process.returncode != 0:
            print(f"SIGTERM exit code {process.returncode}, "
                  f"expected 0", file=sys.stderr)
            failures += 1
        with open(log_path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle
                     if line.strip()]
        if not lines or lines[-1].get("event") != "server_shutdown":
            print("log does not end with a server_shutdown line",
                  file=sys.stderr)
            failures += 1
        elif not lines[-1].get("drained"):
            print("server_shutdown line reports drained=false",
                  file=sys.stderr)
            failures += 1

    if failures:
        print(f"concurrency smoke: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print("concurrency smoke: mixed concurrent load, forced "
          "contention and graceful shutdown all reconcile")
    return 0


if __name__ == "__main__":
    sys.exit(main())
