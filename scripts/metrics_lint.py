"""CI lint: the metric reference in ``docs/observability.md`` and the
families ``/metrics`` actually exposes must agree.

Metric families are declared lazily (first write), so a plain boot
exposes almost nothing.  The lint therefore boots ``repro serve`` and
drives one request of every shape that owns a family — several
engines including a sharded (``workers: 0``) round so the pool-health
families appear, a cache-hit repeat, a deliberate timeout, a
deliberate truncation, a ``/facts`` batch, and one background job run
to completion — with ``--trace-sample 1.0 --exemplars`` so the flight
recorder and exemplar paths are live too.  Then:

* every family named in an ``observability.md`` table row must be
  exposed by ``GET /metrics`` (``# TYPE`` line), unless it is in
  ``ALLOWED_TIMING`` — families only a race can trigger (admission
  rejections, cooperative cancellations, genuine evaluation errors);
* every exposed family must be documented — an undocumented family
  always fails, there is no allowlist in that direction.

Exits non-zero listing every stale or undocumented name.

Usage::

    PYTHONPATH=src python scripts/metrics_lint.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
sys.path.insert(0, SRC)

DOC = os.path.join(os.path.dirname(SRC), "docs", "observability.md")

#: documented families that only a race or a failure can write —
#: tolerated as absent from the driven exposure, never as stale docs
ALLOWED_TIMING = {
    "repro_queries_rejected_total",   # needs a 429 under contention
    "repro_queries_cancelled_total",  # needs a mid-evaluation cancel
    "repro_query_errors_total",       # needs a genuine engine failure
}

_DOC_NAME = re.compile(r"`(repro_[a-z0-9_]+)`")
_TYPE_LINE = re.compile(r"^# TYPE (repro_[a-z0-9_]+) "
                        r"(?:counter|gauge|histogram)$", re.MULTILINE)

PROGRAM = "\n".join(
    ["P(x, y) :- A(x, z), P(z, y).", "P(x, y) :- A(x, y)."]
    + [f"A(n{i}, n{i + 1})." for i in range(8)]) + "\n"


def documented_families() -> set[str]:
    """Family names from the markdown tables (rows starting '|')."""
    names: set[str] = set()
    with open(DOC, encoding="utf-8") as handle:
        for line in handle:
            if line.lstrip().startswith("|"):
                names.update(_DOC_NAME.findall(line))
    return names


def _request(base: str, path: str, document: dict | None = None,
             method: str | None = None) -> tuple[int, dict]:
    data = (json.dumps(document).encode("utf-8")
            if document is not None else None)
    request = urllib.request.Request(
        base + path, data, {"Content-Type": "application/json"},
        method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def drive(base: str) -> None:
    """One request per family-owning shape; outcomes are asserted so
    a silently changed route cannot hollow the lint out."""
    for document, status in [
        ({"query": "P(n0, Y)"}, 200),                      # compiled
        ({"query": "P(X, Y)", "engine": "semi-naive"}, 200),
        ({"query": "P(n0, Y)", "engine": "top-down"}, 200),
        ({"query": "P(X, Y)", "workers": 0}, 200),         # sharded
        ({"query": "P(n0, Y)"}, 200),                      # cache hit
        ({"query": "P(n2, Y)", "max_rows": 1}, 200),       # truncated
        ({"query": "P(n3, Y)", "timeout_s": 0}, 408),      # timeout
    ]:
        got, _ = _request(base, "/query", document)
        assert got == status, (document, got)
    got, _ = _request(base, "/facts",
                      {"add": {"A": [["n8", "n9"]]}})
    assert got == 200, got
    got, job = _request(base, "/query",
                        {"query": "P(n0, Y)", "mode": "async"})
    assert got == 202, got
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        got, state = _request(base, job["status_url"])
        if state["state"] not in ("queued", "running"):
            break
        time.sleep(0.02)
    assert state["state"] == "done", state


def exposed_families(base: str) -> set[str]:
    with urllib.request.urlopen(base + "/metrics",
                                timeout=30) as response:
        return set(_TYPE_LINE.findall(response.read().decode("utf-8")))


def main() -> int:
    documented = documented_families()
    assert len(documented) > 30, "observability.md tables not found?"

    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "tc.dl")
        with open(program, "w", encoding="utf-8") as handle:
            handle.write(PROGRAM)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", program,
             "--port", "0", "--trace-sample", "1.0", "--exemplars"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving on http://"), banner
            base = banner.split("serving on ", 1)[1]
            drive(base)
            exposed = exposed_families(base)
        finally:
            process.terminate()
            process.wait(timeout=30)

    failures = 0
    for name in sorted(exposed - documented):
        print(f"undocumented: {name} is exposed by /metrics but "
              f"missing from docs/observability.md", file=sys.stderr)
        failures += 1
    for name in sorted(documented - exposed - ALLOWED_TIMING):
        print(f"stale: {name} is documented in docs/observability.md "
              f"but never exposed by the driven server",
              file=sys.stderr)
        failures += 1
    for name in sorted(ALLOWED_TIMING - documented):
        print(f"allowlist rot: {name} is in ALLOWED_TIMING but not "
              f"documented", file=sys.stderr)
        failures += 1

    if failures:
        print(f"metrics lint: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"metrics lint: {len(exposed)} exposed families all "
          f"documented; {len(documented)} documented names accounted "
          f"for ({len(ALLOWED_TIMING)} timing-dependent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
