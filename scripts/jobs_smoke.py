"""CI smoke: async jobs survive client disconnects, reconciled.

End-to-end over a real subprocess and real sockets, in two phases:

1. **disconnect/reconnect** — submit a deliberately slow background
   job (the full transitive closure of a deep chain under the *naive*
   engine — class A5, the unbounded recursion the paper's
   classification sends to iterative evaluation) via ``POST /query``
   with ``"mode": "async"``, then *drop* a polling connection mid-run
   without reading the response.  While the job grinds on its worker
   thread, a burst of fast synchronous queries — an EDB lookup, a
   bound closure probe, and a **class-D** query (bounded recursion,
   the classification's cheap class) — must all complete ``200`` with
   zero ``429``/5xx: one slow job must not queue the fast path.
   Reconnect, poll the job to ``done``, fetch the streamed result,
   and assert the job counters in ``/healthz`` and the
   ``repro_jobs_*``/``repro_job_*`` series in ``/metrics`` reconcile
   **exactly** with what the client observed;
2. **drain** — a fresh server with one job worker and a short grace:
   submit three slow jobs (one runs, two queue) and SIGTERM while
   they are in flight.  The process must exit 0 and the terminal
   ``server_shutdown`` log line must report ``drained: true`` with
   every job accounted for: submitted == finished, the queued ones
   cancelled, the running one either finished or cooperatively
   cancelled at a round boundary.

Exits non-zero on the first violation.

Usage::

    PYTHONPATH=src python scripts/jobs_smoke.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
sys.path.insert(0, SRC)

from repro.metrics import parse_prometheus_text  # noqa: E402

CHAIN = 300  # nodes n0 … n300; naive closure ≈ several seconds
CLOSURE_ROWS = CHAIN * (CHAIN + 1) // 2


def _program_text() -> str:
    lines = [
        "P(x, y) :- A(x, z), P(z, y).",   # class A5 (the slow job)
        "P(x, y) :- A(x, y).",
        # class D: both recursive-atom variables are free of the head,
        # so the recursion is bounded (rank ≤ 2) — the fast sync mix
        "Dp(x, y) :- Ca(x, m), Cb(y, n), Dp(x1, y1).",
        "Dp(x, y) :- E0(x, y).",
        "Ca(c1, m1). Ca(c2, m2). Cb(c3, n1). Cb(c4, n2).",
        "E0(c1, c3). E0(c2, c4).",
    ]
    lines += [f"A(n{i}, n{i + 1})." for i in range(CHAIN)]
    return "\n".join(lines) + "\n"


def _request(base: str, method: str, path: str,
             document: dict | None = None):
    data = (json.dumps(document).encode("utf-8")
            if document is not None else None)
    request = urllib.request.Request(
        base + path, data, {"Content-Type": "application/json"},
        method=method)
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _metrics(base: str) -> dict:
    with urllib.request.urlopen(base + "/metrics",
                                timeout=60) as response:
        return parse_prometheus_text(response.read().decode("utf-8"))


def _series_sum(samples: dict, name: str, **labels: str) -> float:
    want = set(labels.items())
    return sum(v for (n, pairs), v in samples.items()
               if n == name and want <= set(pairs))


def _boot(program: str, *args: str, log_path: str | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro", "serve", program,
            "--port", "0", *args]
    if log_path is not None:
        argv += ["--log-json", log_path]
    process = subprocess.Popen(argv, stdout=subprocess.PIPE,
                               stderr=subprocess.PIPE, text=True,
                               env=env)
    banner = process.stdout.readline().strip()
    assert banner.startswith("serving on http://"), banner
    return process, banner.split("serving on ", 1)[1]


def _drop_connection_mid_poll(base: str, job_id: str) -> None:
    """Open a poll request and hang up without reading the response.

    This is the failure mode the job queue exists for: the client's
    connection dying must not touch the evaluation.
    """
    host, port = base.split("//", 1)[1].split(":")
    with socket.create_connection((host, int(port)),
                                  timeout=10) as raw:
        raw.sendall(f"GET /jobs/{job_id} HTTP/1.1\r\n"
                    f"Host: {host}\r\n\r\n".encode("ascii"))
        # hang up immediately — no read, no clean close handshake
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                       b"\x01\x00\x00\x00\x00\x00\x00\x00")


def _phase_disconnect_reconnect(base: str) -> int:
    failures = 0

    status, submitted = _request(
        base, "POST", "/query",
        {"query": "P(X, Y)", "engine": "naive", "mode": "async"})
    if status != 202:
        print(f"async submit: {status} {submitted}", file=sys.stderr)
        return failures + 1
    job_id = submitted["id"]

    # wait for the worker to pick the job up, then hang up on it
    deadline = time.monotonic() + 30
    state = "queued"
    while state == "queued" and time.monotonic() < deadline:
        _, body = _request(base, "GET", f"/jobs/{job_id}")
        state = body["state"]
        time.sleep(0.01)
    if state != "running":
        print(f"job never reached running (state={state!r}); "
              f"the slow query finished too fast for the smoke",
              file=sys.stderr)
        failures += 1
    _drop_connection_mid_poll(base, job_id)

    # the fast sync path must stay fast while the job grinds
    sync_ok = 0
    fast_mix = [
        ({"query": "A(n0, Y)"}, {("n0", "n1")}),          # EDB lookup
        # class D: bounded at rank 2 — one recursion round closes the
        # cross product dom(Ca) × dom(Cb) over the exit tuples
        ({"query": "Dp(X, Y)"},
         {("c1", "c3"), ("c1", "c4"), ("c2", "c3"), ("c2", "c4")}),
        ({"query": "P(n299, Y)"}, {("n299", "n300")}),    # bound probe
    ]
    for _ in range(4):
        for document, expected in fast_mix:
            status, body = _request(base, "POST", "/query", document)
            if status != 200:
                print(f"sync query {document} got {status} while the "
                      f"job ran: {body}", file=sys.stderr)
                failures += 1
                continue
            sync_ok += 1
            answers = {tuple(row) for row in body["answers"]}
            if answers != expected:
                print(f"sync query {document}: wrong answers "
                      f"{answers}", file=sys.stderr)
                failures += 1

    # reconnect and poll the job to completion
    deadline = time.monotonic() + 120
    final = None
    while time.monotonic() < deadline:
        _, final = _request(base, "GET", f"/jobs/{job_id}")
        if final["state"] not in ("queued", "running"):
            break
        time.sleep(0.25)
    if final is None or final["state"] != "done":
        print(f"job did not finish done: {final}", file=sys.stderr)
        return failures + 1
    if final["progress"]["rounds"] < CHAIN:
        print(f"done job reports only {final['progress']['rounds']} "
              f"rounds for a {CHAIN}-deep chain", file=sys.stderr)
        failures += 1

    status, result = _request(base, "GET", f"/jobs/{job_id}/result")
    if status != 200 or result["count"] != CLOSURE_ROWS:
        print(f"result fetch: status {status}, "
              f"{result.get('count')} rows (expected {CLOSURE_ROWS})",
              file=sys.stderr)
        failures += 1
    if result.get("outcome") != "ok" or result.get("epoch") != 0:
        print(f"result envelope wrong: {result.get('outcome')} "
              f"epoch {result.get('epoch')}", file=sys.stderr)
        failures += 1

    # -- exact reconciliation: client ledger vs /healthz vs /metrics --
    _, health = _request(base, "GET", "/healthz")
    jobs = health["jobs"]
    expected_jobs = {"queued": 0, "running": 0, "submitted_total": 1,
                     "finished_total": 1}
    for key, want in expected_jobs.items():
        if jobs[key] != want:
            print(f"healthz jobs.{key}: {jobs[key]} != {want}",
                  file=sys.stderr)
            failures += 1
    if jobs["outcomes"]["done"] != 1 or sum(
            jobs["outcomes"].values()) != 1:
        print(f"healthz jobs.outcomes: {jobs['outcomes']}",
              file=sys.stderr)
        failures += 1
    if health["queries_served"] != sync_ok:
        print(f"healthz queries_served {health['queries_served']} != "
              f"{sync_ok} sync 200s (async jobs must not count)",
              file=sys.stderr)
        failures += 1

    samples = _metrics(base)
    checks = [
        ("repro_jobs_submitted_total",
         _series_sum(samples, "repro_jobs_submitted_total"), 1),
        ("repro_jobs_total{outcome=done}",
         _series_sum(samples, "repro_jobs_total", outcome="done"), 1),
        ("repro_jobs_total (all outcomes)",
         _series_sum(samples, "repro_jobs_total"), 1),
        ("repro_job_queue_depth",
         _series_sum(samples, "repro_job_queue_depth"), 0),
        ("repro_jobs_running",
         _series_sum(samples, "repro_jobs_running"), 0),
        ("repro_job_run_seconds_count",
         _series_sum(samples, "repro_job_run_seconds_count"), 1),
        ("repro_job_queue_wait_seconds_count",
         _series_sum(samples, "repro_job_queue_wait_seconds_count"),
         1),
        ("repro_queries_rejected_total",
         _series_sum(samples, "repro_queries_rejected_total"), 0),
    ]
    for name, got, expected in checks:
        if got != expected:
            print(f"{name}: metrics say {got}, client ledger says "
                  f"{expected}", file=sys.stderr)
            failures += 1

    print(f"phase 1: async job survived a dropped poll connection, "
          f"{sync_ok} fast sync queries flowed un-queued beside it, "
          f"{CLOSURE_ROWS} rows fetched after reconnect; /healthz "
          f"and /metrics job counters reconcile exactly")
    return failures


def _phase_sigterm_drain(program: str, workdir: str) -> int:
    failures = 0
    log_path = os.path.join(workdir, "jobs.jsonl")
    process, base = _boot(program, "--job-workers", "1",
                          "--drain-grace", "2",
                          log_path=log_path)
    try:
        ids = []
        for _ in range(3):
            status, body = _request(base, "POST", "/jobs",
                                    {"query": "P(X, Y)",
                                     "engine": "naive"})
            if status != 202:
                print(f"drain-phase submit: {status} {body}",
                      file=sys.stderr)
                return failures + 1
            ids.append(body["id"])
        # let the single worker pick up the first job, keeping the
        # other two queued, then pull the plug
        time.sleep(1.0)
    finally:
        process.terminate()
        process.wait(timeout=60)

    if process.returncode != 0:
        print(f"SIGTERM exit code {process.returncode}, expected 0",
              file=sys.stderr)
        failures += 1
    with open(log_path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[-1].get("event") != "server_shutdown":
        print("log does not end with a server_shutdown line",
              file=sys.stderr)
        return failures + 1
    last = lines[-1]
    if not last.get("drained"):
        print(f"server_shutdown reports drained=false: {last}",
              file=sys.stderr)
        failures += 1
    if last.get("jobs_submitted") != 3:
        print(f"server_shutdown jobs_submitted "
              f"{last.get('jobs_submitted')} != 3", file=sys.stderr)
        failures += 1
    if last.get("jobs_finished") != 3:
        print(f"drain left jobs unaccounted for: finished "
              f"{last.get('jobs_finished')} of 3", file=sys.stderr)
        failures += 1
    # the two queued jobs are always cancelled; the running one
    # either finished inside the grace or was cancelled at a round
    # boundary — both are clean
    if not 2 <= last.get("jobs_cancelled", -1) <= 3:
        print(f"server_shutdown jobs_cancelled "
              f"{last.get('jobs_cancelled')} not in [2, 3]",
              file=sys.stderr)
        failures += 1
    print(f"phase 2: SIGTERM with 1 running + 2 queued jobs exited "
          f"cleanly; all 3 accounted for "
          f"({last.get('jobs_cancelled')} cancelled), drained=true")
    return failures


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "jobs.dl")
        with open(program, "w", encoding="utf-8") as handle:
            handle.write(_program_text())

        process, base = _boot(program, "--job-workers", "1")
        try:
            failures += _phase_disconnect_reconnect(base)
        finally:
            process.terminate()
            process.wait(timeout=60)

        failures += _phase_sigterm_drain(program, workdir)

    if failures:
        print(f"jobs smoke: {failures} failure(s)", file=sys.stderr)
        return 1
    print("jobs smoke: disconnect/reconnect, fast-path isolation and "
          "drain all reconcile")
    return 0


if __name__ == "__main__":
    sys.exit(main())
