"""CI smoke: one traced query per engine, validated against the schema.

Runs transitive closure through every engine (naive, semi-naive,
sharded in-process and pooled, compiled, top-down, incremental) with a
:class:`~repro.engine.trace.Tracer` attached, validates each emitted
JSON document with
:func:`~repro.engine.trace.validate_trace_dict`, and checks the
delta-conservation invariant (sum of per-round ``delta_out`` equals
the answer count).  It also reconciles the trace against the stats
dump of the same run (what ``repro run --stats-json`` writes): the
trace's round total must equal the sum of
``EvaluationStats.delta_sizes`` for every engine — the two
observability surfaces must never disagree.  Exits non-zero on the
first violation — this is the drift gate for
``TRACE_SCHEMA_VERSION``/``STATS_SCHEMA_VERSION``.

Usage::

    PYTHONPATH=src python scripts/trace_smoke.py
"""

from __future__ import annotations

import json
import sys

from repro.datalog.parser import parse_system
from repro.engine import (CompiledEngine, MaterializedRecursion,
                          NaiveEngine, Query, SemiNaiveEngine,
                          ShardedSemiNaiveEngine, TopDownEngine,
                          Tracer, validate_trace_dict)
from repro.engine.stats import EvaluationStats, delta_between
from repro.ra import Database
from repro.workloads import chain

ENGINES = {
    "naive": NaiveEngine(),
    "semi-naive": SemiNaiveEngine(),
    "compiled": CompiledEngine(),
    "top-down": TopDownEngine(),
    "sharded(workers=0)": ShardedSemiNaiveEngine(workers=0),
    "sharded(workers=2)": ShardedSemiNaiveEngine(workers=2,
                                                 min_parallel_rows=1),
}


def main() -> int:
    system = parse_system("P(x, y) :- A(x, z), P(z, y).")
    db = Database.from_dict({
        "A": chain(8),
        "P__exit": [(f"n{i}", f"n{i}") for i in range(9)],
    })
    query = Query.all_free("P", 2)
    failures = 0

    for label, engine in ENGINES.items():
        tracer = Tracer()
        stats = EvaluationStats()
        answers = engine.evaluate(system, db.copy(), query, stats,
                                  trace=tracer)
        failures += _check(label, tracer, len(answers),
                           stats.to_dict())

    view = MaterializedRecursion(system, db)
    tracer = Tracer()
    before = view.stats.to_dict()
    added = view.insert("A", ("n9", "n0"), trace=tracer)
    failures += _check("incremental", tracer, len(added),
                       delta_between(before, view.stats.to_dict()))

    if failures:
        print(f"trace smoke: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"trace smoke: {len(ENGINES) + 1} engines OK")
    return 0


def _check(label: str, tracer: Tracer, expected: int,
           stats_dump: dict) -> int:
    if tracer.trace is None:
        print(f"{label}: no trace emitted", file=sys.stderr)
        return 1
    document = json.loads(tracer.trace.to_json())
    try:
        validate_trace_dict(document)
    except ValueError as error:
        print(f"{label}: schema violation: {error}", file=sys.stderr)
        return 1
    if tracer.trace.delta_total != expected:
        print(f"{label}: traced deltas {tracer.trace.delta_total} != "
              f"answers {expected}", file=sys.stderr)
        return 1
    # Trace/stats reconciliation: both layers count the same rounds.
    stats_total = sum(stats_dump["delta_sizes"])
    if tracer.trace.delta_total != stats_total:
        print(f"{label}: traced deltas {tracer.trace.delta_total} != "
              f"stats delta_sizes sum {stats_total}", file=sys.stderr)
        return 1
    print(f"{label}: {len(document['rounds'])} rounds, "
          f"{expected} answers — schema OK, stats reconciled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
