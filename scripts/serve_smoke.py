"""CI smoke: boot ``repro serve``, query it, reconcile ``/metrics``.

End-to-end over a real subprocess and real sockets:

1. write a transitive-closure program to a temp dir and start
   ``python -m repro serve`` on an ephemeral port (``--port 0``) with
   ``--log-json``;
2. run a scripted multi-query session over ``POST /query`` — several
   engines, bound and free query forms — collecting each response's
   per-query ``stats``;
3. assert ``GET /healthz`` is 200, and that the counters in
   ``GET /metrics`` (parsed with the registry's own minimal parser)
   reconcile *exactly* with the per-query stats sums: query counts
   per engine, ``repro_rounds_total``/``repro_probes_total``/
   ``repro_derived_total`` per engine, and the vectorised delta-loop
   counters ``repro_vector_batches_total{backend}`` /
   ``repro_vector_rows_total`` (non-zero — the session's semi-naive
   queries certify for the kernel — and equal to the summed
   per-response stats, under a single agreed backend label);
4. assert the structured log emitted exactly one line per query;
5. assert the three signals correlate on the query id: every
   response's ``query_id`` matches its log line, retrieves a full
   trace from ``GET /debug/traces/<id>`` (the server runs with
   ``--trace-sample 1.0``), and the latency histogram's exemplars
   (``--exemplars``) name ids from this session — one id is followed
   through all four places;
6. send SIGTERM and assert the graceful path: exit code 0 and a
   final ``server_shutdown`` log line with ``drained: true``.

Exits non-zero on the first violation.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import urllib.request
from collections import defaultdict

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
sys.path.insert(0, SRC)

from repro.metrics import parse_prometheus_text  # noqa: E402

CHAIN = 8  # nodes n0 … n8

#: the scripted session: (query, engine or None for the default)
SESSION = [
    ("P(n0, Y)", None),
    ("P(X, Y)", None),
    ("P(n0, Y)", "semi-naive"),
    ("P(X, Y)", "semi-naive"),
    ("P(X, Y)", "naive"),
    ("P(n0, Y)", "top-down"),
    ("P(X, Y)", "sharded"),
    ("A(n0, Y)", None),  # EDB path
    ("P(X, Y)", "semi-naive"),  # repeat: served by the answer cache
]


def _program_text() -> str:
    lines = ["P(x, y) :- A(x, z), P(z, y).", "P(x, y) :- A(x, y)."]
    lines += [f"A(n{i}, n{i + 1})." for i in range(CHAIN)]
    return "\n".join(lines) + "\n"


def _expected(query: str) -> set[tuple[str, str]]:
    closure = {(f"n{i}", f"n{j}")
               for i in range(CHAIN) for j in range(i + 1, CHAIN + 1)}
    if query == "P(n0, Y)":
        return {pair for pair in closure if pair[0] == "n0"}
    if query == "P(X, Y)":
        return closure
    if query == "A(n0, Y)":
        return {("n0", "n1")}
    raise AssertionError(query)


def _post(base: str, document: dict) -> dict:
    request = urllib.request.Request(
        base + "/query", json.dumps(document).encode("utf-8"),
        {"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200, response.status
        return json.loads(response.read())


def _get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as response:
        assert response.status == 200, (path, response.status)
        return json.loads(response.read())


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "tc.dl")
        log_path = os.path.join(workdir, "queries.jsonl")
        with open(program, "w", encoding="utf-8") as handle:
            handle.write(_program_text())
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", program,
             "--port", "0", "--log-json", log_path,
             "--trace-sample", "1.0", "--exemplars"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving on http://"), banner
            base = banner.split("serving on ", 1)[1]

            # -- the scripted session ---------------------------------
            per_engine: dict[str, dict] = defaultdict(
                lambda: {"queries": 0, "rounds": 0, "probes": 0,
                         "derived": 0})
            query_ids: list[str] = []
            vector_sums = {"vector_batches": 0, "vector_rows": 0}
            vector_backends: set[str] = set()
            for query, engine in SESSION:
                document = {"query": query}
                if engine == "sharded":
                    document["workers"] = 0
                elif engine is not None:
                    document["engine"] = engine
                response = _post(base, document)
                answers = {tuple(row) for row in response["answers"]}
                if answers != _expected(query):
                    print(f"{query} [{engine}]: wrong answers "
                          f"({len(answers)} rows)", file=sys.stderr)
                    failures += 1
                query_ids.append(response["query_id"])
                bucket = per_engine[response["engine"]]
                bucket["queries"] += 1
                for field in ("rounds", "probes", "derived"):
                    bucket[field] += response["stats"][field]
                for field in vector_sums:
                    vector_sums[field] += response["stats"][field]
                if response["stats"]["vector_batches"]:
                    vector_backends.add(response["stats"]["backend"])
            if len(set(query_ids)) != len(SESSION):
                print("query_ids missing or not unique",
                      file=sys.stderr)
                failures += 1

            # -- health -----------------------------------------------
            with urllib.request.urlopen(base + "/healthz",
                                        timeout=30) as response:
                assert response.status == 200
                health = json.loads(response.read())
            if health["queries_served"] != len(SESSION):
                print(f"healthz served {health['queries_served']} != "
                      f"{len(SESSION)}", file=sys.stderr)
                failures += 1

            # -- metrics reconcile exactly with per-query stats -------
            exemplars: dict = {}
            with urllib.request.urlopen(base + "/metrics",
                                        timeout=30) as response:
                samples = parse_prometheus_text(
                    response.read().decode("utf-8"),
                    exemplars=exemplars)

            def series_sum(name: str, **labels: str) -> float:
                want = set(labels.items())
                return sum(v for (n, pairs), v in samples.items()
                           if n == name and want <= set(pairs))

            for engine, bucket in per_engine.items():
                checks = [
                    ("repro_queries_total",
                     series_sum("repro_queries_total", engine=engine,
                                outcome="ok"), bucket["queries"]),
                    ("repro_rounds_total",
                     series_sum("repro_rounds_total", engine=engine),
                     bucket["rounds"]),
                    ("repro_probes_total",
                     series_sum("repro_probes_total", engine=engine),
                     bucket["probes"]),
                    ("repro_derived_total",
                     series_sum("repro_derived_total", engine=engine),
                     bucket["derived"]),
                ]
                for name, got, expected in checks:
                    if got != expected:
                        print(f"{name}{{engine={engine}}}: metrics "
                              f"say {got}, stats sum to {expected}",
                              file=sys.stderr)
                        failures += 1
            if series_sum("repro_relation_rows",
                          relation="A") != CHAIN:
                print("repro_relation_rows{relation=A} wrong",
                      file=sys.stderr)
                failures += 1

            # -- dictionary-encoding telemetry ------------------------
            # the server's database interns by default, so both
            # storage gauges must be present and positive
            for gauge in ("repro_symbols_total",
                          "repro_encoded_bytes_estimate"):
                if series_sum(gauge) <= 0:
                    print(f"{gauge} missing or zero in /metrics",
                          file=sys.stderr)
                    failures += 1
            # the repeated query in SESSION must have been served by
            # the cross-query answer cache, and the hit must surface
            # as the counter
            if series_sum("repro_answer_cache_hits_total") != 1:
                print("repro_answer_cache_hits_total != 1",
                      file=sys.stderr)
                failures += 1

            # -- lazy columnar decode reconciles exactly --------------
            # every unique query's answers cross the query boundary
            # still encoded (lazy), and the server's response render
            # is the only point that forces decode — so both counters
            # must equal the summed answer counts of the *unique*
            # queries, and the decode histogram must have exactly one
            # observation per unique query.  The cache-hit repeat
            # reuses the already-decoded set and contributes to
            # neither.
            unique = list(dict.fromkeys(SESSION))
            expected_lazy = sum(len(_expected(q)) for q, _ in unique)
            for name in ("repro_answers_lazy_total",
                         "repro_answers_decoded_total"):
                if series_sum(name) != expected_lazy:
                    print(f"{name}: metrics say {series_sum(name)}, "
                          f"unique-query answers sum to "
                          f"{expected_lazy}", file=sys.stderr)
                    failures += 1
            if series_sum("repro_decode_seconds_count") != len(unique):
                print("repro_decode_seconds_count != "
                      f"{len(unique)} unique queries", file=sys.stderr)
                failures += 1

            # -- vectorised delta-loop counters reconcile exactly -----
            # the session's semi-naive runs over the interned TC
            # program certify for the vector kernel (numpy or its
            # stub, whichever this interpreter has), so the backend
            # counters must be non-zero AND equal the per-response
            # stats sums; every contributing response must agree on
            # one backend name, which must label the batch counter
            if vector_sums["vector_batches"] <= 0:
                print("no response reported vector_batches > 0 — the "
                      "vector kernel never engaged", file=sys.stderr)
                failures += 1
            for name, field in (
                    ("repro_vector_batches_total", "vector_batches"),
                    ("repro_vector_rows_total", "vector_rows")):
                if series_sum(name) != vector_sums[field]:
                    print(f"{name}: metrics say {series_sum(name)}, "
                          f"stats sum to {vector_sums[field]}",
                          file=sys.stderr)
                    failures += 1
            if len(vector_backends) == 1:
                backend = next(iter(vector_backends))
                labelled = series_sum("repro_vector_batches_total",
                                      backend=backend)
                if labelled != vector_sums["vector_batches"]:
                    print(f"repro_vector_batches_total{{backend="
                          f"{backend}}}: metrics say {labelled}, "
                          f"stats sum to "
                          f"{vector_sums['vector_batches']}",
                          file=sys.stderr)
                    failures += 1
            else:
                print(f"vectorised responses disagree on backend: "
                      f"{sorted(vector_backends)}", file=sys.stderr)
                failures += 1

            # -- one structured log line per query --------------------
            with open(log_path, encoding="utf-8") as handle:
                lines = [json.loads(line) for line in handle
                         if line.strip()]
            query_lines = [line for line in lines
                           if line.get("event") == "query"]
            if len(query_lines) != len(SESSION):
                print(f"log has {len(query_lines)} query lines, "
                      f"expected {len(SESSION)}", file=sys.stderr)
                failures += 1
            if len({line["query_id"] for line in query_lines}) != len(
                    query_lines):
                print("duplicate query_id in log", file=sys.stderr)
                failures += 1

            # -- the three signals correlate on the query id ----------
            # each response's id matches its log line (both streams
            # are in request order — the smoke client is sequential)
            logged_ids = [line["query_id"] for line in query_lines]
            if logged_ids != query_ids:
                print("log query_ids do not match response order",
                      file=sys.stderr)
                failures += 1
            # at --trace-sample 1.0 every id retrieves a full trace
            report = _get_json(base, "/debug/traces")
            if not (report["captured_total"] == len(SESSION)
                    == report["sampled_total"]):
                print(f"recorder captured {report['captured_total']} "
                      f"(sampled {report['sampled_total']}), expected "
                      f"{len(SESSION)} sampled", file=sys.stderr)
                failures += 1
            if report["forced_total"] or report["slow_total"]:
                print("unexpected forced/slow captures",
                      file=sys.stderr)
                failures += 1
            for query_id in query_ids:
                document = _get_json(base,
                                     f"/debug/traces/{query_id}")
                phase_names = [span["name"]
                               for span in document["phases"]]
                if "engine" not in phase_names or not document["trace"]:
                    print(f"trace {query_id} lacks engine phase or "
                          f"engine trace", file=sys.stderr)
                    failures += 1
            # the repeated final query was served by the answer cache
            # and its trace says so
            repeat = _get_json(base, f"/debug/traces/{query_ids[-1]}")
            if not repeat["trace"]["meta"].get("cache_hit"):
                print("cache-hit repeat trace lacks cache_hit meta",
                      file=sys.stderr)
                failures += 1
            # exemplars on the latency histogram name this session's
            # ids (last-exemplar-per-bucket, so a subset survives)
            exemplar_ids = {
                labels["query_id"]
                for (name, _), (labels, _) in exemplars.items()
                if name == "repro_query_duration_seconds_bucket"}
            if not exemplar_ids:
                print("no exemplars on the latency histogram",
                      file=sys.stderr)
                failures += 1
            elif not exemplar_ids <= set(query_ids):
                print("exemplar ids outside this session",
                      file=sys.stderr)
                failures += 1
            else:
                # follow one id through all four signals explicitly
                chosen = sorted(exemplar_ids)[0]
                if not (chosen in logged_ids
                        and _get_json(base, f"/debug/traces/{chosen}")
                        ["query_id"] == chosen):
                    print(f"exemplar id {chosen} does not correlate",
                          file=sys.stderr)
                    failures += 1

            # -- graceful shutdown on SIGTERM -------------------------
            process.terminate()
            process.wait(timeout=30)
            if process.returncode != 0:
                print(f"SIGTERM exit code {process.returncode}, "
                      f"expected 0 (graceful)", file=sys.stderr)
                failures += 1
            with open(log_path, encoding="utf-8") as handle:
                lines = [json.loads(line) for line in handle
                         if line.strip()]
            if not lines or lines[-1].get("event") != "server_shutdown":
                print("log does not end with a server_shutdown line",
                      file=sys.stderr)
                failures += 1
            elif not lines[-1].get("drained"):
                print("server_shutdown line reports drained=false",
                      file=sys.stderr)
                failures += 1
        finally:
            if process.poll() is None:
                process.terminate()
                process.wait(timeout=30)

    if failures:
        print(f"serve smoke: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"serve smoke: {len(SESSION)} queries across "
          f"{len(per_engine)} engines — answers, /healthz, /metrics, "
          f"the query log, traces and exemplars all reconcile on "
          f"the query id")
    return 0


if __name__ == "__main__":
    sys.exit(main())
