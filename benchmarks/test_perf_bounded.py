"""PERF2: bounded classes evaluate in constant depth.

The practical content of the boundedness results: a bounded formula
(classes B, D, A2/A4) needs no fixpoint at all — the compiled engine
evaluates the fixed set of exit expansions, while semi-naive iterates
until the data says stop.  Rounds stay constant for compiled as the
data grows.
"""

import pytest

from repro.core import text_table
from repro.engine import (CompiledEngine, EvaluationStats, Query,
                          SemiNaiveEngine)
from repro.workloads import CATALOGUE, random_edb

BOUNDED_CASES = [("s8", 4), ("s10", 2), ("s5", 3), ("s6", 6)]


@pytest.mark.parametrize("name,arity", BOUNDED_CASES)
def test_perf2_bounded_constant_depth(benchmark, save_artifact, name,
                                      arity):
    system = CATALOGUE[name].system()
    query = Query.all_free("P", arity)

    def run_both():
        rows = []
        for scale in (8, 12, 16):
            db = random_edb(system, nodes=scale,
                            tuples_per_relation=4 * scale, seed=2)
            semi, comp = EvaluationStats(), EvaluationStats()
            semi_answers = SemiNaiveEngine().evaluate(system, db, query,
                                                      semi)
            comp_answers = CompiledEngine().evaluate(system, db, query,
                                                     comp)
            assert semi_answers == comp_answers
            rows.append((scale, semi.rounds, comp.rounds))
        return rows

    rows = benchmark(run_both)
    compiled_rounds = {comp for _, _, comp in rows}
    assert len(compiled_rounds) == 1  # constant in the data size
    save_artifact(f"perf2_{name}", text_table(
        ["scale", "semi-naive rounds", "compiled rounds"],
        [list(r) for r in rows]))


def test_perf2_flattening_matches_rank(benchmark, save_artifact):
    """The compiled engine touches exactly bound+1 exit depths."""
    from repro.core import classify
    rows = []

    def build():
        out = []
        for name, _ in BOUNDED_CASES:
            system = CATALOGUE[name].system()
            bound = classify(system).rank_bound
            out.append((name, bound, bound + 1))
        return out

    for name, bound, depths in benchmark(build):
        rows.append([name, bound, depths])
    save_artifact("perf2_depths", text_table(
        ["formula", "rank bound", "exit depths evaluated"], rows))
