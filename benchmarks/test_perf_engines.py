"""PERF1: engine comparison on class-A workloads (the motivation).

The paper's premise (and [Han 85a]'s performance results) is that
compiled selection-first evaluation beats bottom-up computation of the
whole fixpoint for selective queries.  We sweep workload shapes
(chain, tree, random digraph) for transitive closure and report the
probe counts per engine; the *shape* claim checked: compiled < semi-
naive < naive, with the gap growing in the data size.
"""

import pytest

from repro.bench import POINT_HEADERS, run_point
from repro.core import text_table
from repro.engine import Query
from repro.ra import Database
from repro.workloads import (CATALOGUE, binary_tree, chain,
                             random_digraph, reflexive_exit)


def _tc_database(shape: str, size: int) -> tuple[Database, str]:
    if shape == "chain":
        edges = chain(size)
        start = "n0"
    elif shape == "tree":
        edges = binary_tree(size)
        start = "t1"
    else:
        edges = random_digraph(size, 2 * size, seed=1)
        start = edges[0][0]
    nodes = sorted({n for edge in edges for n in edge})
    db = Database.from_dict({"A": edges,
                             "P__exit": [(n, n) for n in nodes]})
    return db, start


SWEEP = [("chain", 16), ("chain", 48), ("tree", 4), ("tree", 7),
         ("random", 24), ("random", 64)]


@pytest.mark.parametrize("shape,size", SWEEP)
def test_perf1_engine_comparison(benchmark, save_artifact, shape, size):
    system = CATALOGUE["s1a"].system()
    db, start = _tc_database(shape, size)
    query = Query("P", (start, None))

    point = benchmark(run_point, f"{shape}-{size}", system, db, query)
    assert point.agreed
    naive = point.runs["naive"].stats.probes
    semi = point.runs["semi-naive"].stats.probes
    compiled = point.runs["compiled"].stats.probes
    # the paper's ordering: compiled beats semi-naive beats naive
    assert compiled < semi < naive
    table = text_table(POINT_HEADERS, [point.row()])
    save_artifact(f"perf1_{shape}_{size}", table)


def test_perf1_gap_grows_with_size(save_artifact, benchmark):
    """The compiled/semi-naive gap widens on longer chains (linear
    frontier walk vs quadratic fixpoint)."""
    system = CATALOGUE["s1a"].system()

    def sweep():
        ratios = []
        for length in (8, 16, 32, 64):
            db = Database.from_dict({
                "A": chain(length),
                "P__exit": reflexive_exit(length)})
            point = run_point(f"chain-{length}", system, db,
                              Query.parse("P(n0, Y)"),
                              engines=("semi-naive", "compiled"))
            ratios.append(
                (length,
                 point.runs["semi-naive"].stats.probes,
                 point.runs["compiled"].stats.probes))
        return ratios

    ratios = benchmark(sweep)
    factors = [semi / comp for _, semi, comp in ratios]
    assert all(later > earlier
               for earlier, later in zip(factors, factors[1:]))
    rows = [[length, semi, comp, f"{semi / comp:.1f}x"]
            for length, semi, comp in ratios]
    save_artifact("perf1_scaling", text_table(
        ["chain length", "semi-naive probes", "compiled probes",
         "factor"], rows))
