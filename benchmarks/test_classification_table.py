"""TAB1: the section-3 classification applied to every paper example.

This is the paper's central "table" (the class list (A)–(F) plus the
per-example claims scattered through sections 4–10), regenerated in
one pass and checked cell by cell against the catalogue's recorded
paper claims.
"""

from repro.core import classification_table, classify
from repro.workloads import CATALOGUE, PAPER_ORDER, paper_systems


def test_tab1_classification_of_all_examples(benchmark, save_artifact):
    systems = paper_systems()

    def build():
        return {name: classify(system)
                for name, system in systems.items()}

    results = benchmark(build)

    mismatches = []
    for name in PAPER_ORDER:
        entry = CATALOGUE[name]
        result = results[name]
        cells = {
            "class": (entry.paper_class, str(result.formula_class)),
            "components": (entry.paper_components,
                           "+".join(str(k)
                                    for k in result.component_kinds)),
            "stable": (entry.paper_stable, result.is_strongly_stable),
            "transformable": (entry.paper_transformable,
                              result.is_transformable),
            "unfold": (entry.paper_unfold, result.unfold_times),
            "bounded": (entry.paper_bounded, str(result.boundedness)),
            "rank": (entry.paper_rank_bound, result.rank_bound),
        }
        for cell, (paper, measured) in cells.items():
            if paper != measured:
                mismatches.append((name, cell, paper, measured))
    assert not mismatches, mismatches

    table = classification_table(systems)
    save_artifact("table1_classification", table)


def test_tab1b_extended_corpus(benchmark, save_artifact):
    """TAB1b (extension): the classifier over the corner-case corpus —
    the branches the paper's own examples never reach (dependent-but-
    bounded, the UNKNOWN corner, decorated stable formulas, LCM
    mixes)."""
    from repro.core import classification_table
    from repro.workloads import EXTRA_CATALOGUE, extra_systems

    systems = extra_systems()

    def build():
        return {name: classify(system)
                for name, system in systems.items()}

    results = benchmark(build)
    for name, entry in EXTRA_CATALOGUE.items():
        row = results[name].summary_row()
        assert row["class"] == entry.paper_class, name
        assert row["bounded"] == entry.paper_bounded, name
        assert row["rank_bound"] == entry.paper_rank_bound, name
    save_artifact("table1b_extended_corpus",
                  classification_table(systems))
