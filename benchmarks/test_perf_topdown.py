"""PERF5: interpreted top-down vs compiled top-down.

The paper's compilation lineage ([Hens 84]) is top-down; the point of
*compiling* is to replace run-time resolution with a closed iterative
formula.  This bench quantifies that: tabled QSQR interpretation vs
the compiled chain iteration, same answers, on growing chains."""

from repro.core import text_table
from repro.engine import (CompiledEngine, EvaluationStats, Query,
                          TopDownEngine)
from repro.ra import Database
from repro.workloads import CATALOGUE, chain, reflexive_exit


def test_perf5_interpreted_vs_compiled_topdown(benchmark, save_artifact):
    system = CATALOGUE["s1a"].system()

    def sweep():
        rows = []
        for length in (8, 16, 32):
            db = Database.from_dict({
                "A": chain(length),
                "P__exit": reflexive_exit(length)})
            query = Query.parse("P(n0, Y)")
            interpreted, compiled = EvaluationStats(), EvaluationStats()
            a1 = TopDownEngine().evaluate(system, db, query, interpreted)
            a2 = CompiledEngine().evaluate(system, db, query, compiled)
            assert a1 == a2
            rows.append([length, interpreted.probes, compiled.probes,
                         f"{interpreted.probes / compiled.probes:.1f}x"])
        return rows

    rows = benchmark(sweep)
    # the compiled form wins, and increasingly so
    factors = [float(row[3][:-1]) for row in rows]
    assert all(f > 1 for f in factors)
    assert factors[-1] > factors[0]
    save_artifact("perf5_topdown", text_table(
        ["chain length", "tabled QSQR probes",
         "compiled chain probes", "factor"], rows))
