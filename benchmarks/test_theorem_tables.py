"""TAB2–TAB4: the theorem-verification tables.

* TAB2 — Theorem 1: syntactic vs semantic stability per formula.
* TAB3 — Theorems 2/4: unfold counts and semantic equivalence of the
  transformation on random databases.
* TAB4 — boundedness: predicted rank bound vs measured rank over a
  seed sweep (Ioannidis's theorem, Theorem 10).
"""

from repro.core import classify, stability_report, text_table, to_stable
from repro.engine import SemiNaiveEngine
from repro.workloads import CATALOGUE, PAPER_ORDER, random_edb

TRANSFORMABLE = ("s1a", "s2a", "s3", "s4", "s5", "s6", "s7", "thm1")
BOUNDED = ("s5", "s6", "s8", "s10")


def test_tab2_theorem1_stability_table(benchmark, save_artifact):
    names = PAPER_ORDER + ("compressed", "thm1")

    def build():
        return {name: stability_report(
            CATALOGUE[name].system().recursive) for name in names}

    reports = benchmark(build)
    rows = []
    for name in names:
        report = reports[name]
        assert report.agree, name  # Theorem 1
        rows.append([name, "yes" if report.syntactic else "no",
                     "yes" if report.semantic else "no",
                     report.counterexample or "-"])
    table = text_table(
        ["formula", "syntactic (unit cycles)", "semantic (adornments)",
         "counterexample"], rows)
    save_artifact("table2_theorem1", table)


def test_tab3_transformation_table(benchmark, save_artifact):
    def build():
        out = {}
        for name in TRANSFORMABLE:
            system = CATALOGUE[name].system()
            transformed = to_stable(system)
            db = random_edb(system, nodes=5, tuples_per_relation=8,
                            seed=13)
            engine = SemiNaiveEngine()
            out[name] = (
                transformed.unfold_times,
                len(transformed.system.exits),
                transformed.classification.is_strongly_stable,
                engine.evaluate(system, db)
                == engine.evaluate(transformed.system, db))
        return out

    results = benchmark(build)
    rows = []
    for name in TRANSFORMABLE:
        unfold, exits, stable, equivalent = results[name]
        paper_unfold = CATALOGUE[name].paper_unfold
        assert unfold == paper_unfold, name
        assert stable and equivalent, name
        rows.append([name, paper_unfold, unfold, exits,
                     "yes" if stable else "no",
                     "yes" if equivalent else "no"])
    table = text_table(
        ["formula", "paper unfold", "measured unfold", "exits",
         "stable after", "equivalent"], rows)
    save_artifact("table3_transformation", table)


def test_tab4_rank_bounds_table(benchmark, save_artifact):
    from repro.core import witness_rank

    def build():
        out = {}
        engine = SemiNaiveEngine()
        for name in BOUNDED:
            system = CATALOGUE[name].system()
            bound = classify(system).rank_bound
            worst = 0
            for seed in range(12):
                db = random_edb(system, nodes=4,
                                tuples_per_relation=14, seed=seed)
                worst = max(worst, engine.measured_rank(system, db))
            attained = witness_rank(system, bound + 1)
            out[name] = (bound, worst, attained)
        return out

    results = benchmark(build)
    rows = []
    for name in BOUNDED:
        bound, worst, attained = results[name]
        paper_bound = CATALOGUE[name].paper_rank_bound
        assert bound == paper_bound, name
        assert worst <= bound, name      # the bound holds
        assert attained == bound, name   # and it is tight (witness)
        rows.append([name, paper_bound, bound, worst, attained])
    table = text_table(
        ["formula", "paper bound", "computed bound",
         "max rank (12 random seeds)", "witness rank"], rows)
    save_artifact("table4_rank_bounds", table)
