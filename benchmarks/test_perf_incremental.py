"""PERF6: incremental maintenance vs recompute-from-scratch.

After each base-fact insertion, a materialised recursive view can be
patched by delta rules instead of re-running the fixpoint.  The probes
per insertion stay near-constant for the incremental path while the
recompute path grows with the materialised relation."""

from repro.core import text_table
from repro.datalog import parse_system
from repro.engine import EvaluationStats, SemiNaiveEngine
from repro.engine.incremental import MaterializedRecursion
from repro.ra import Database


def test_perf6_incremental_vs_recompute(benchmark, save_artifact):
    system = parse_system(
        "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
    length = 40
    edges = [(f"n{i}", f"n{i + 1}") for i in range(length)]

    def run_both():
        view = MaterializedRecursion(
            system, Database.from_dict({"E": [(f"n{length}",) * 2]}))
        incremental_probes = 0
        for edge in reversed(edges):
            before = view.stats.probes
            view.insert("A", edge)
            incremental_probes += view.stats.probes - before

        scratch_db = Database.from_dict({"E": [(f"n{length}",) * 2]})
        recompute_probes = 0
        engine = SemiNaiveEngine()
        reference = None
        for edge in reversed(edges):
            scratch_db.add("A", edge)
            stats = EvaluationStats()
            reference = engine.evaluate(system, scratch_db, stats=stats)
            recompute_probes += stats.probes
        assert view.rows == reference
        return incremental_probes, recompute_probes

    incremental_probes, recompute_probes = benchmark(run_both)
    assert incremental_probes * 3 < recompute_probes
    save_artifact("perf6_incremental", text_table(
        ["maintenance strategy", f"total probes ({length} inserts)"],
        [["incremental deltas", incremental_probes],
         ["recompute per insert", recompute_probes]]))
