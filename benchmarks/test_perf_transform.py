"""PERF4: the cost/benefit of Theorem 2's transformation.

For class A3/A5 formulas the compiled engine unfolds to the stable
system (stride-L recursion with L exits) and then runs the chain
strategy.  Compared against direct semi-naive on the original rule:
same answers, and for selective queries fewer probes — the unfolding
itself is a compile-time cost, measured separately."""

import pytest

from repro.core import classify, text_table, to_stable
from repro.engine import (CompiledEngine, EvaluationStats, Query,
                          SemiNaiveEngine)
from repro.workloads import CATALOGUE, random_edb

CASES = ["s4", "s7", "thm1"]

#: per-formula EDB sizes — s7 is 7-ary and its fixpoint
#: explodes combinatorially, so it gets a smaller universe
SIZES = {"s4": (10, 25), "s7": (6, 10), "thm1": (10, 25)}


@pytest.mark.parametrize("name", CASES)
def test_perf4_transformation_compile_time(benchmark, name):
    """Unfolding cost alone (pure compile-time, no data)."""
    system = CATALOGUE[name].system()
    classification = classify(system)
    result = benchmark(to_stable, system, classification)
    assert result.classification.is_strongly_stable


def test_perf4_unfolded_vs_direct(benchmark, save_artifact):
    """Answers agree; selective queries favour the compiled route."""
    def sweep():
        rows = []
        for name in CASES:
            system = CATALOGUE[name].system()
            nodes, tuples = SIZES[name]
            db = random_edb(system, nodes=nodes,
                            tuples_per_relation=tuples, seed=9)
            constant = sorted(db.active_domain())[0]
            pattern = (constant,) + (None,) * (system.dimension - 1)
            query = Query("P", pattern)
            semi, comp = EvaluationStats(), EvaluationStats()
            semi_answers = SemiNaiveEngine().evaluate(
                system, db, query, semi)
            comp_answers = CompiledEngine().evaluate(
                system, db, query, comp)
            assert semi_answers == comp_answers, name
            rows.append([name, classify(system).unfold_times,
                         len(comp_answers), semi.probes, comp.probes])
        return rows

    rows = benchmark(sweep)
    save_artifact("perf4_transform", text_table(
        ["formula", "unfold L", "answers", "semi-naive probes",
         "compiled (unfold+chains) probes"], rows))
