"""Ablations of the design choices DESIGN.md calls out.

* **ABL1 — binding filter (magic) in the iterative strategy**: the
  compiled engine's only edge for classes E/F is filtering the
  bottom-up fixpoint by the adornment-sequence bindings; switching it
  off (plain semi-naive + final selection) shows how many tuples the
  filter saves on (s12).
* **ABL2 — hash indexes in the fact store**: the selection-first
  principle assumes selective access paths; with indexes disabled the
  same plans touch the whole relation per probe.
"""

from repro.core import text_table
from repro.engine import (CompiledEngine, EvaluationStats, Query,
                          SemiNaiveEngine)
from repro.ra import Database
from repro.workloads import (CATALOGUE, chain, random_edb,
                             reflexive_exit)


def test_abl1_binding_filter(benchmark, save_artifact):
    system = CATALOGUE["s12"].system()
    db = random_edb(system, nodes=10, tuples_per_relation=40, seed=3)
    constant = sorted(db.active_domain())[0]
    query = Query("P", (constant, None, None))

    def run_both():
        with_filter, without = EvaluationStats(), EvaluationStats()
        filtered = CompiledEngine().evaluate(system, db, query,
                                             with_filter)
        plain = SemiNaiveEngine().evaluate(system, db, query, without)
        assert filtered == plain
        return with_filter, without

    with_filter, without = benchmark(run_both)
    admitted_filtered = sum(with_filter.delta_sizes)
    admitted_plain = sum(without.delta_sizes)
    assert admitted_filtered < admitted_plain
    save_artifact("ablation1_binding_filter", text_table(
        ["variant", "tuples admitted into P", "probes"],
        [["binding-filtered (compiled)", admitted_filtered,
          with_filter.probes],
         ["unfiltered (semi-naive + final σ)", admitted_plain,
          without.probes]]))


def test_abl2_index_ablation(benchmark, save_artifact):
    system = CATALOGUE["s1a"].system()
    rows = {"A": chain(64), "P__exit": reflexive_exit(64)}
    query = Query.parse("P(n0, Y)")

    def run_both():
        out = []
        for indexed in (True, False):
            db = Database(indexed=indexed)
            for name, data in rows.items():
                db.bulk(name, data)
            stats = EvaluationStats()
            answers = CompiledEngine().evaluate(system, db, query, stats)
            out.append((indexed, len(answers), db.touches))
        return out

    results = benchmark(run_both)
    (with_index, answers_a, touches_indexed), \
        (_, answers_b, touches_scanned) = results
    assert with_index and answers_a == answers_b
    # indexes turn per-probe scans into direct lookups
    assert touches_indexed * 10 < touches_scanned
    save_artifact("ablation2_indexes", text_table(
        ["variant", "answers", "rows touched"],
        [["hash-indexed", answers_a, touches_indexed],
         ["full scans", answers_b, touches_scanned]]))


def test_abl3_minimisation(benchmark, save_artifact):
    """ABL3 — redundant-atom elimination ([Han 87]'s motivation):
    a rule padded with redundant subgoals evaluates identically but
    slower; minimisation removes the padding."""
    from repro.core import classify, minimize_system
    from repro.datalog import parse_system
    from repro.workloads import chain, reflexive_exit

    # the w-chain A(x,w)∧B(w,m) folds onto the z-chain A(x,z)∧B(z,m2)
    padded = parse_system(
        "P(x, y) :- A(x, z), B(z, m2), A(x, w), A(x, q), B(w, m), "
        "P(z, y).")
    minimal = minimize_system(padded)
    assert len(minimal.recursive.rule.body) == 3  # A, B, P
    assert classify(minimal).is_strongly_stable

    db = Database.from_dict({
        "A": chain(40),
        "B": chain(40),
        "P__exit": reflexive_exit(40),
    })
    query = Query.parse("P(n0, Y)")

    def run_both():
        before, after = EvaluationStats(), EvaluationStats()
        slow = SemiNaiveEngine().evaluate(padded, db, query, before)
        fast = SemiNaiveEngine().evaluate(minimal, db, query, after)
        assert slow == fast
        return before, after

    before, after = benchmark(run_both)
    assert after.probes < before.probes
    save_artifact("ablation3_minimisation", text_table(
        ["variant", "body atoms", "probes"],
        [["padded rule", len(padded.recursive.rule.body),
          before.probes],
         ["minimised rule", len(minimal.recursive.rule.body),
          after.probes]]))
