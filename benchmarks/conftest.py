"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's artefacts (a figure, a
table, or an engine-comparison series), asserts the properties the
paper claims, and writes the rendered artefact to
``benchmarks/output/<name>.txt`` so EXPERIMENTS.md can reference it.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Write a named artefact and echo it to the terminal report."""

    def _save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _save
