"""Compare fresh benchmark artifacts against committed baselines.

Each ``BENCH_*.json`` under ``benchmarks/baselines/`` is matched by
file name against the artifacts a benchmark run left in
``benchmarks/output/``, and every baseline workload's ``speedup`` is
compared with the current one.  The speedup is a ratio of two timings
taken on the *same* machine in the *same* run, so it transfers across
hardware in a way raw seconds never could; a drop of more than
``--threshold`` (default 25%) is a regression.

Prints a GitHub-flavoured markdown table (pipe it into
``$GITHUB_STEP_SUMMARY`` in CI) and exits non-zero when any workload
regressed or went missing.  Workloads that only exist in the current
run are reported as ``new`` and never fail the gate — adding a
benchmark should not require touching the baselines in the same
commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

OK = "ok"
NEW = "new"
REGRESSION = "**regression**"
MISSING = "**missing**"


def compare_results(baseline: dict, current: dict | None,
                    threshold: float) -> list[dict]:
    """Per-workload comparison rows for one benchmark pair.

    >>> base = {"bench": "b", "results": [{"workload": "w", "speedup": 4.0}]}
    >>> cur = {"bench": "b", "results": [{"workload": "w", "speedup": 3.5}]}
    >>> compare_results(base, cur, 0.25)[0]["status"]
    'ok'
    >>> cur["results"][0]["speedup"] = 2.9
    >>> compare_results(base, cur, 0.25)[0]["status"]
    '**regression**'
    """
    current_by_name = {} if current is None else {
        r["workload"]: r for r in current.get("results", [])}
    rows = []
    for entry in baseline.get("results", []):
        name = entry["workload"]
        was = entry["speedup"]
        now_entry = current_by_name.pop(name, None)
        if now_entry is None:
            rows.append({"bench": baseline["bench"], "workload": name,
                         "baseline": was, "current": None,
                         "status": MISSING})
            continue
        now = now_entry["speedup"]
        regressed = now < was * (1.0 - threshold)
        rows.append({"bench": baseline["bench"], "workload": name,
                     "baseline": was, "current": now,
                     "status": REGRESSION if regressed else OK})
    for name, entry in sorted(current_by_name.items()):
        rows.append({"bench": baseline["bench"], "workload": name,
                     "baseline": None, "current": entry["speedup"],
                     "status": NEW})
    return rows


def markdown_table(rows: list[dict]) -> str:
    """The comparison as a GitHub-flavoured markdown table."""
    def fmt(value):
        return "—" if value is None else f"{value:.2f}x"

    def delta(row):
        if row["baseline"] and row["current"] is not None:
            return f"{row['current'] / row['baseline'] - 1.0:+.0%}"
        return "—"

    lines = ["| bench | workload | baseline | current | change | status |",
             "|---|---|---:|---:|---:|---|"]
    lines += [f"| {r['bench']} | {r['workload']} | {fmt(r['baseline'])} "
              f"| {fmt(r['current'])} | {delta(r)} | {r['status']} |"
              for r in rows]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", type=Path,
                        default=HERE / "baselines")
    parser.add_argument("--current", type=Path, default=HERE / "output")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional speedup drop "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    baseline_files = sorted(args.baselines.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no baselines under {args.baselines}", file=sys.stderr)
        return 1

    rows: list[dict] = []
    for path in baseline_files:
        baseline = json.loads(path.read_text(encoding="utf-8"))
        current_path = args.current / path.name
        current = (json.loads(current_path.read_text(encoding="utf-8"))
                   if current_path.exists() else None)
        rows.extend(compare_results(baseline, current, args.threshold))

    print(f"## Benchmark regression gate (threshold "
          f"-{args.threshold:.0%})\n")
    print(markdown_table(rows))
    bad = [r for r in rows if r["status"] in (REGRESSION, MISSING)]
    if bad:
        print(f"\n{len(bad)} workload(s) regressed or missing.")
        return 1
    print("\nAll workloads within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
