"""PERF: set-at-a-time join plans vs tuple-at-a-time backtracking.

The semi-naive fixpoint is run twice on each generator workload — once
through the compiled hash-join kernel (the default), once through the
per-delta-tuple backtracking solver (``set_at_a_time=False``) — with
identical answer sets asserted before any timing is trusted.  The
headline claim: ≥3× wall-clock on a transitive-closure (class A1)
workload at 10k+ EDB rows, where the per-tuple interpreter overhead
dominates.  Results land in ``benchmarks/output/BENCH_setjoin.json``
(uploaded as a CI artifact) plus the usual text table.
"""

from __future__ import annotations

import json
import time

from repro.core import text_table
from repro.datalog.parser import parse_system
from repro.engine import EvaluationStats, SemiNaiveEngine
from repro.ra import Database
from repro.workloads import grid, random_digraph

TC_SYSTEM_TEXT = "P(x, y) :- A(x, z), P(z, y)."  # the paper's (s1a), class A1
TARGET_SPEEDUP = 3.0


def _parallel_chains(chains: int, length: int) -> list[tuple]:
    """*chains* disjoint chains of *length* edges — 10k+ EDB rows with
    a closure that stays linear in the input (unlike one long chain)."""
    edges: list[tuple] = []
    for c in range(chains):
        edges.extend((f"c{c}_n{i}", f"c{c}_n{i + 1}")
                     for i in range(length))
    return edges


def _tc_database(edges: list[tuple]) -> Database:
    nodes = sorted({n for edge in edges for n in edge})
    return Database.from_dict({"A": edges,
                               "P__exit": [(n, n) for n in nodes]})


def _time_engine(engine: SemiNaiveEngine, system, db,
                 repeats: int = 2) -> tuple[float, frozenset, EvaluationStats]:
    best = float("inf")
    answers, stats = frozenset(), EvaluationStats()
    for _ in range(repeats):
        run_stats = EvaluationStats()
        started = time.perf_counter()
        answers = engine.evaluate(system, db, stats=run_stats)
        best = min(best, time.perf_counter() - started)
        stats = run_stats
    return best, answers, stats


def _measure(name: str, system, db) -> dict:
    set_s, set_answers, set_stats = _time_engine(
        SemiNaiveEngine(set_at_a_time=True), system, db)
    tuple_s, tuple_answers, _ = _time_engine(
        SemiNaiveEngine(set_at_a_time=False), system, db)
    assert set_answers == tuple_answers, f"{name}: answer sets differ"
    return {
        "workload": name,
        "edb_rows": db.total_facts(),
        "answers": len(set_answers),
        "rounds": set_stats.rounds,
        "tuple_at_a_time_s": round(tuple_s, 4),
        "set_at_a_time_s": round(set_s, 4),
        "speedup": round(tuple_s / max(set_s, 1e-9), 2),
        "batch_sizes": set_stats.batch_sizes,
        "hash_builds": set_stats.hash_builds,
        "plan_cache": {"hits": set_stats.plan_cache_hits,
                       "misses": set_stats.plan_cache_misses},
    }


def test_setjoin_speedup(save_artifact, artifact_dir):
    system = parse_system(TC_SYSTEM_TEXT)
    points = [
        ("tc-chains-10k", _tc_database(_parallel_chains(1250, 8))),
        ("tc-chains-20k", _tc_database(_parallel_chains(2500, 8))),
        ("tc-grid-30x30", _tc_database(grid(30, 30))),
        ("tc-random-2k", _tc_database(
            random_digraph(1000, 2000, seed=3))),
    ]
    results = [_measure(name, system, db) for name, db in points]

    headline = results[0]
    assert headline["edb_rows"] >= 10_000
    assert headline["speedup"] >= TARGET_SPEEDUP, (
        f"set-at-a-time only {headline['speedup']}x on the 10k TC "
        f"workload (target {TARGET_SPEEDUP}x)")
    # nowhere may the new default be slower than the old path
    for point in results:
        assert point["speedup"] >= 1.0, point

    payload = {
        "bench": "setjoin",
        "engine": "semi-naive",
        "target_speedup": TARGET_SPEEDUP,
        "results": results,
    }
    (artifact_dir / "BENCH_setjoin.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_artifact("perf_setjoin", text_table(
        ["workload", "EDB rows", "answers", "tuple s", "set s",
         "speedup"],
        [[p["workload"], p["edb_rows"], p["answers"],
          p["tuple_at_a_time_s"], p["set_at_a_time_s"],
          f"{p['speedup']}x"] for p in results]))


def test_hash_tables_built_once_per_fixpoint():
    """The delta rounds reuse one cached hash table per (relation,
    key) — the whole point of versioned caching."""
    system = parse_system(TC_SYSTEM_TEXT)
    db = _tc_database(_parallel_chains(100, 8))
    stats = EvaluationStats()
    SemiNaiveEngine().evaluate(system, db, stats=stats)
    assert stats.rounds > 2
    # one table for A keyed on column 0 (the join), one for the exits
    assert stats.hash_builds <= 2
