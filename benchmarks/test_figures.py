"""FIG1–FIG6: regenerate every figure of the paper.

The paper's figures are I-graphs and resolution graphs; each bench
rebuilds the graph, renders it, asserts the structural facts the
figure illustrates, and saves the text rendering.
"""

from repro.core.bindings import binding_sequence
from repro.core.compile import compile_query
from repro.datalog import Variable
from repro.graphs import (ascii_figure, ascii_resolution, build_igraph,
                          directed_path_weight, resolution_graph)
from repro.workloads import CATALOGUE

V = Variable


def test_figure1_igraphs_of_example1(benchmark, save_artifact):
    """Figure 1: the I-graphs of (s1a) and (s1b)."""
    s1a = CATALOGUE["s1a"].system()
    s1b = CATALOGUE["s1b"].system()

    def build():
        return (build_igraph(s1a.recursive), build_igraph(s1b.recursive))

    graph_a, graph_b = benchmark(build)
    assert len(graph_a.directed) == 2
    assert any(e.is_self_loop for e in graph_a.directed)
    assert len(graph_b.directed) == 3
    assert {e.label for e in graph_b.undirected} == {"A", "B"}
    text = "\n\n".join([ascii_figure(graph_a, "Figure 1(a): s1a"),
                        ascii_figure(graph_b, "Figure 1(b): s1b")])
    save_artifact("figure1", text)


def test_figure2_resolution_graphs_of_s2a(benchmark, save_artifact):
    """Figure 2: I-graph, 2nd I-graph, 2nd resolution graph, collapsed
    view of (s2a); the weight from x to z₁ is two."""
    system = CATALOGUE["s2a"].system()

    def build():
        return (resolution_graph(system, 1), resolution_graph(system, 2))

    first, second = benchmark(build)
    assert directed_path_weight(second.graph, V("x"), V("z_1")) == 2
    assert directed_path_weight(second.graph, V("y"), V("u_1")) == 2
    collapsed = second.collapsed_igraph()
    tails = {(e.tail.name, e.head.name) for e in collapsed.directed}
    assert tails == {("x", "z_1"), ("y", "u_1")}
    text = "\n\n".join([
        ascii_resolution(first, "Figure 2(a): first resolution graph"),
        ascii_resolution(second, "Figure 2(c): second resolution graph"),
        ascii_figure(collapsed, "Figure 2(d): 2nd expansion as formula"),
        "paper claim: weight(x → z₁) = 2  ✓ measured 2",
    ])
    save_artifact("figure2", text)


def test_figure3_igraph_of_s8_with_bound(benchmark, save_artifact):
    """Figure 3: the I-graph of (s8); upper bound 2."""
    from repro.core import classify
    system = CATALOGUE["s8"].system()
    classification = benchmark(classify, system)
    assert str(classification.formula_class) == "B"
    assert classification.rank_bound == 2
    text = "\n".join([
        ascii_figure(classification.graph, "Figure 3: I-graph of (s8)"),
        "",
        f"paper claim: bounded with upper bound 2  ✓ computed "
        f"{classification.rank_bound}",
    ])
    save_artifact("figure3", text)


def test_figure4_s9_resolution_graphs_and_plans(benchmark, save_artifact):
    """Figure 4: 1st/2nd resolution graphs of (s9) and the two
    evaluation plans of Example 9."""
    system = CATALOGUE["s9"].system()

    def build():
        return (resolution_graph(system, 1), resolution_graph(system, 2),
                compile_query(system, "dvv"), compile_query(system, "vvd"))

    first, second, plan_dvv, plan_vvd = benchmark(build)
    assert len(second.graph.directed) == 6
    # P(d,v,v): paper plan σE, (σA) X (∪k [(E⋈B)(BA)^k])
    assert "(σA) X" in plan_dvv.plan_text
    assert "^k" in plan_dvv.plan_text
    # P(v,v,d): paper plan σE, (∃ ∪k [(AB)^k (E⋈B)]) A
    assert "∃(" in plan_vvd.plan_text
    assert plan_vvd.plan_text.endswith("-A]")
    text = "\n\n".join([
        ascii_resolution(first, "Figure 4(a): first resolution graph"),
        ascii_resolution(second, "Figure 4(b): second resolution graph"),
        "paper plan P(d,v,v): σE, (σA) X (∪k [(E⋈B)(BA)^k])",
        f"ours:                {plan_dvv.plan_text}",
        "paper plan P(v,v,d): σE, (∃ ∪k [(AB)^k (E⋈B)]) A",
        f"ours:                {plan_vvd.plan_text}",
    ])
    save_artifact("figure4", text)


def test_figure5_s11_resolution_graphs_and_plan(benchmark, save_artifact):
    """Figure 5: resolution graphs of (s11); P(d,v) plan with {A,B}
    branches."""
    system = CATALOGUE["s11"].system()

    def build():
        return (resolution_graph(system, 1), resolution_graph(system, 2),
                compile_query(system, "dv"))

    first, second, compiled = benchmark(build)
    # paper: σE, σA-C-B-E, ∪k σA-C-B-[{A,B}-C]^k-E
    assert compiled.plan_text == \
        "σE,  σA-C-B-E,  ∪k≥1 [σA-C-B-[{A, B}-C]^k-E]"
    text = "\n\n".join([
        ascii_resolution(first, "Figure 5(a): first resolution graph"),
        ascii_resolution(second, "Figure 5(b): second resolution graph"),
        "paper plan P(d,v): σE, σA-C-B-E, ∪k=1 σA-C-B-[{A,B}-C]^k-E",
        f"ours:              {compiled.plan_text}",
    ])
    save_artifact("figure5", text)


def test_figure6_s12_adornments_and_plan(benchmark, save_artifact):
    """Figure 6 / Example 14: the P(d,v,v) adornment sequence
    dvv → ddv → ddv and the evaluation plan with D^{k+1}."""
    system = CATALOGUE["s12"].system()

    def build():
        return (resolution_graph(system, 2),
                binding_sequence(system.recursive, frozenset({0})),
                compile_query(system, "dvv"))

    second, sequence, compiled = benchmark(build)
    assert sequence.describe(3) == "dvv → (ddv)*"
    assert sequence.state_at(1) == {0, 1}
    assert sequence.state_at(2) == {0, 1}
    assert "[{A, B}-C]^k" in compiled.plan_text
    assert compiled.plan_text.endswith("E-D^k-D]")
    text = "\n\n".join([
        ascii_resolution(second, "Figure 6: second resolution graph"),
        "paper: incoming P(d,v,v); 1st expansion P(d,d,v); "
        "2nd expansion P(d,d,v)",
        f"ours: binding sequence {sequence.describe(3)}",
        "paper plan: σE, ∪k σA-C-B-[{A,B}-C]^k-E-D^{k+1}",
        f"ours:       {compiled.plan_text}",
    ])
    save_artifact("figure6", text)
