"""PERF: dictionary-encoded storage vs raw value tuples.

The same transitive-closure and 3-hop workloads are evaluated twice —
on an interned database (dense int codes end to end, the default) and
on its ``intern=False`` twin (raw value tuples, the pre-encoding
pipeline) — with identical answer sets asserted before any timing is
trusted.  The headline claim, ≥1.5× wall-clock on the 20k-row
transitive-closure workload under a bound query, comes from where the
time actually goes: the fixpoint probes code-indexed lists instead of
hashing strings, and the answer boundary decodes a handful of rows.
The free-enumeration row is reported alongside *honestly* — there the
answer set is ~112k rows and decoding them back to values eats the
kernel win, so interning does not pay; sessions that enumerate
everything should read that row, not the headline.

The pickled sharded snapshot (what every pool worker receives) must
also be strictly smaller interned: int codes beat repeated strings.
Results land in ``benchmarks/output/BENCH_intern.json``, uploaded as a
CI artifact and compared against ``benchmarks/baselines/`` by the
bench-regression job.
"""

import json
import os
import pickle
import time

from repro.core import text_table
from repro.datalog.parser import parse_system
from repro.engine import (EvaluationStats, Query, SemiNaiveEngine,
                          ShardedSemiNaiveEngine)
from repro.ra import Database

TC_SYSTEM_TEXT = "P(x, y) :- A(x, z), P(z, y)."  # the paper's (s1a), class A1
THREE_HOP_TEXT = "P(x, y) :- A(x, m), B(m, n), C(n, z), P(z, y)."
TARGET_SPEEDUP = 1.5
WORKERS = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _parallel_chains(chains: int, length: int) -> list[tuple]:
    """*chains* disjoint chains of *length* edges — 10k+ EDB rows with
    a closure that stays linear in the input (unlike one long chain)."""
    edges: list[tuple] = []
    for c in range(chains):
        edges.extend((f"c{c}_n{i}", f"c{c}_n{i + 1}")
                     for i in range(length))
    return edges


def _tc_relations(edges: list[tuple]) -> dict:
    nodes = sorted({n for edge in edges for n in edge})
    return {"A": edges, "P__exit": [(n, n) for n in nodes]}


def _layered_3hop_relations(width: int, levels: int,
                            branching: int = 3) -> dict:
    """The layered DAG of the sharded bench: join-work-heavy 3-hop TC."""
    relations: dict[str, list[tuple]] = {"A": [], "B": [], "C": []}
    for level in range(levels):
        rows = relations["ABC"[level % 3]]
        for col in range(width):
            src = f"l{level}_c{col}"
            rows.extend((src, f"l{level + 1}_c{(col + b) % width}")
                        for b in range(branching))
    relations["P__exit"] = [
        (f"l{level}_c{col}",) * 2
        for level in range(0, levels + 1, 3) for col in range(width)]
    return relations


def _twins(relations: dict) -> tuple[Database, Database]:
    """The same contents stored interned and raw."""
    return (Database.from_dict(relations),
            Database.from_dict(relations, intern=False))


def _time_engine(engine, system, db, query, repeats):
    """Best-of-*repeats* wall clock; later runs reuse the version-tagged
    join tables cached on *db*, so the minimum reports the warm steady
    state both storage modes are entitled to."""
    best = float("inf")
    answers = frozenset()
    for _ in range(repeats):
        started = time.perf_counter()
        answers = engine.evaluate(system, db, query,
                                  EvaluationStats())
        best = min(best, time.perf_counter() - started)
    return best, answers


def _measure(name, system, twins, query=None, repeats=3,
             engine_factory=SemiNaiveEngine) -> dict:
    interned, raw = twins
    interned_s, interned_answers = _time_engine(
        engine_factory(), system, interned, query, repeats)
    raw_s, raw_answers = _time_engine(
        engine_factory(), system, raw, query, repeats)
    assert interned_answers == raw_answers, f"{name}: answers differ"
    return {
        "workload": name,
        "edb_rows": interned.total_facts(),
        "answers": len(interned_answers),
        "interned_s": round(interned_s, 4),
        "raw_s": round(raw_s, 4),
        "speedup": round(raw_s / max(interned_s, 1e-9), 2),
    }


def test_interning_speedup(save_artifact, artifact_dir):
    tc_system = parse_system(TC_SYSTEM_TEXT)
    hop_system = parse_system(THREE_HOP_TEXT)
    bound = Query.parse("P(c0_n0, Y)")

    tc_10k = _twins(_tc_relations(_parallel_chains(1250, 8)))
    tc_20k = _twins(_tc_relations(_parallel_chains(2500, 8)))
    hop_20k = _twins(_layered_3hop_relations(555, 12))

    results = [
        _measure("tc-20k-bound-query", tc_system, tc_20k,
                 query=bound, repeats=7),
        _measure("tc-10k-bound-query", tc_system, tc_10k,
                 query=bound, repeats=5),
        _measure("tc-20k-full-enum", tc_system, tc_20k, repeats=3),
        _measure("3hop-20k-bound-query", hop_system, hop_20k,
                 query=Query.parse("P(l0_c0, Y)"), repeats=2),
        _measure(f"tc-20k-bound-sharded-w{WORKERS}", tc_system, tc_20k,
                 query=bound, repeats=2,
                 engine_factory=lambda: ShardedSemiNaiveEngine(
                     workers=WORKERS)),
    ]

    headline = results[0]
    assert headline["edb_rows"] >= 20_000
    assert headline["speedup"] >= TARGET_SPEEDUP, (
        f"interning only {headline['speedup']}x on the 20k-row TC "
        f"bound query (target {TARGET_SPEEDUP}x)")

    # What a pool worker is shipped: the interned snapshot must be
    # strictly smaller — dense int codes beat repeated node names.
    interned_bytes = len(pickle.dumps(tc_20k[0]))
    raw_bytes = len(pickle.dumps(tc_20k[1]))
    assert interned_bytes < raw_bytes, (
        f"interned snapshot {interned_bytes}B is not smaller than "
        f"raw {raw_bytes}B")

    payload = {
        "bench": "intern",
        "engine": "semi-naive",
        "cpus": _cpus(),
        "target_speedup": TARGET_SPEEDUP,
        "snapshot_bytes_interned": interned_bytes,
        "snapshot_bytes_raw": raw_bytes,
        "results": results,
    }
    (artifact_dir / "BENCH_intern.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_artifact("perf_intern", text_table(
        ["workload", "EDB rows", "answers", "interned s", "raw s",
         "speedup"],
        [[p["workload"], p["edb_rows"], p["answers"], p["interned_s"],
          p["raw_s"], f"{p['speedup']}x"] for p in results]))


def test_interning_smoke_parity():
    """The cheap always-on check: a small workload answers identically
    and strictly smaller pickled in a fraction of a second."""
    twins = _twins(_tc_relations(_parallel_chains(250, 8)))
    system = parse_system(TC_SYSTEM_TEXT)
    row = _measure("tc-2k-smoke", system, twins,
                   query=Query.parse("P(c0_n0, Y)"), repeats=2)
    assert row["answers"] == 9
    assert len(pickle.dumps(twins[0])) < len(pickle.dumps(twins[1]))
