"""TAB5: compiled formulas and evaluation plans for the paper's
representative queries, side by side with the paper's notation."""

from repro.core import compile_query
from repro.core.compile import Strategy
from repro.core.plans import relation_names
from repro.core import text_table
from repro.workloads import CATALOGUE

#: (formula, query form, paper's plan text, expected strategy,
#:  required plan fragments)
CASES = [
    ("s1a", "dv", "σE, ∪k σ_a·A^k ⋈ E", Strategy.STABLE, ("σA^k",)),
    ("s3", "ddv", "σE, ∪k {σA^k, σB^k} ⋈ E ⋈ C^k", Strategy.STABLE,
     ("{σA^k, σB^k}", "C^k")),
    ("s4", "ddv", "unfold 3×, then stable with compressed AB-chains",
     Strategy.TRANSFORM, ("^k",)),
    ("s8", "dvvv", "finite union over exit depths 1..3",
     Strategy.BOUNDED, (",",)),
    ("s9", "dvv", "σE, (σA) X (∪k [(E⋈B)(BA)^k])", Strategy.ITERATIVE,
     ("(σA) X", "^k")),
    ("s9", "vvd", "σE, (∃ ∪k [(AB)^k (E⋈B)]) A", Strategy.ITERATIVE,
     ("∃(", "-A]")),
    ("s11", "dv", "σE, σA-C-B-E, ∪k σA-C-B-[{A,B}-C]^k-E",
     Strategy.ITERATIVE, ("σA-C-B-[{A, B}-C]^k-E",)),
    ("s12", "dvv", "σE, ∪k σA-C-B-[{A,B}-C]^k-E-D^{k+1}",
     Strategy.ITERATIVE, ("[{A, B}-C]^k", "D^k-D")),
]


def test_tab5_compiled_plans(benchmark, save_artifact):
    def build():
        return [compile_query(CATALOGUE[name].system(), form)
                for name, form, *_ in CASES]

    compiled = benchmark(build)
    rows = []
    for (name, form, paper_plan, strategy, fragments), formula in zip(
            CASES, compiled):
        assert formula.strategy is strategy, (name, form)
        for fragment in fragments:
            assert fragment in formula.plan_text, (
                name, form, fragment, formula.plan_text)
        # sanity: every relation the plan mentions exists in the rule
        mentioned = set(relation_names(formula.plan))
        available = (set(formula.system.edb_predicates)
                     | {"E", "id"}
                     | {r + "" for r in ("AB", "BC", "CA", "ABC")})
        assert mentioned <= available or formula.strategy in (
            Strategy.TRANSFORM,), (name, mentioned)
        rows.append([f"{name} P({form})", str(formula.strategy),
                     paper_plan, formula.plan_text])
    table = text_table(
        ["query", "strategy", "paper plan", "generated plan"], rows)
    save_artifact("table5_plans", table)
