"""PERF: the vectorised delta-loop backend vs the tuple-set loop.

The semi-naive delta loop for the hot linear-recursion shape (single
fused step, identity entry layout) spends its time in python-level
tuple plumbing: per-delta-row dict probes, tuple packing, set inserts.
The vectorised backend (:mod:`repro.engine.vector`) keeps the frontier
as flat int64 vectors end-to-end — CSR adjacency gather, packed-key
sorted dedup, one columnar hand-off to the answer boundary — and
builds row tuples only when someone exercises row semantics.  This
bench times both backends on the *same* interned database (same warm
join caches, same plan cache), answers asserted identical outside the
timed region:

* ``tc-20k-full-enum`` — full transitive closure over 2 500 disjoint
  chains of 8 hops (20k edges, ~112k answers; the columnar bench's
  own 20k TC shape).  Gated at the ISSUE's ≥2.0x with numpy;
* ``tc-20k-bound-query`` — the same fixpoint with a one-constant
  query: semi-naive does not push constants, so the loop dominates,
  and the vector path filters by column mask instead of a per-row
  scan.  Gated at ≥2.0x as well;
* ``3hop-20k-compressed-chain`` — the catalogue's ``compressed_chain``
  rule (``P(x,y) :- A(x,m), B(m,n), C(n,z), P(z,y)``) on a ~20k-row
  layered DAG.  Its three-step plan fails the vector certificate, so
  both runs take the tuple-set loop: this leg pins the fallback cost
  at ~1x (no silent regression for uncertified shapes);
* ``stub-20k-full-enum`` — the pure-python ``array`` stub forced on
  the full-enum workload.  Reported honestly: the stub exists for
  bit-identical portability when numpy is absent, not for speed — the
  expectation is ~1x (within noise of the tuple-set loop), and the
  floor only guards against collapse.

Results land in ``benchmarks/output/BENCH_vector.json`` and are gated
against ``benchmarks/baselines/BENCH_vector.json`` by
``benchmarks/compare.py``.
"""

import json
import os
import time

from repro.core import text_table
from repro.datalog.parser import parse_system
from repro.engine import EvaluationStats, Query, SemiNaiveEngine
from repro.engine.vector import HAVE_NUMPY, force_stub
from repro.ra import Database

TC_SYSTEM_TEXT = "P(x, y) :- A(x, z), P(z, y)."  # the paper's (s1a), class A1
#: the catalogue's ``compressed_chain`` shape (class A5): a three-step
#: plan the vector certificate rejects — the fallback workload
THREE_HOP_TEXT = "P(x, y) :- A(x, m), B(m, n), C(n, z), P(z, y)."
#: the ISSUE's acceptance gate for the numpy kernel on both 20k TC
#: workloads (full enumeration and the bound query)
TARGET_SPEEDUP = 2.0
#: the stub and the uncertified fallback are portability/correctness
#: paths; they must stay within noise of the tuple-set loop
FLOOR_WITHIN_NOISE = 0.5


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _parallel_chains(chains: int, length: int) -> list[tuple]:
    edges: list[tuple] = []
    for c in range(chains):
        edges.extend((f"c{c}_n{i}", f"c{c}_n{i + 1}")
                     for i in range(length))
    return edges


def _tc_database(edges: list[tuple]) -> Database:
    nodes = sorted({n for edge in edges for n in edge})
    return Database.from_dict(
        {"A": edges, "P__exit": [(n, n) for n in nodes]})


def _layered_3hop_database(width: int, levels: int,
                           branching: int = 3) -> Database:
    """The sharded bench's layered DAG for the 3-hop rule: *levels*
    edge layers of *width* nodes, layer ``l`` stored in A/B/C by
    ``l % 3``, exits on the A-aligned levels only."""
    relations: dict[str, list[tuple]] = {"A": [], "B": [], "C": []}
    for level in range(levels):
        rows = relations["ABC"[level % 3]]
        for col in range(width):
            src = f"l{level}_c{col}"
            rows.extend((src, f"l{level + 1}_c{(col + b) % width}")
                        for b in range(branching))
    exits = [(f"l{level}_c{col}",) * 2
             for level in range(0, levels + 1, 3)
             for col in range(width)]
    return Database.from_dict({**relations, "P__exit": exits})


def _time_backend(system, db, query, backend, repeats):
    """Best-of-*repeats* evaluation with *backend*; later runs reuse
    the version-tagged join/CSR caches on *db* (warm steady state for
    both backends — the comparison is loop work, not cache builds)."""
    best = float("inf")
    answers = stats = None
    for _ in range(repeats):
        stats = EvaluationStats()
        started = time.perf_counter()
        answers = SemiNaiveEngine(backend=backend).evaluate(
            system, db, query, stats)
        best = min(best, time.perf_counter() - started)
    return best, answers, stats


def _measure(name, system, db, query=None, repeats=5, stub=False,
             expect_vector=True) -> dict:
    if stub:
        force_stub(True)
    try:
        vector_s, vector_answers, vector_stats = _time_backend(
            system, db, query, "vector", repeats)
    finally:
        force_stub(False)
    python_s, python_answers, python_stats = _time_backend(
        system, db, query, "python", repeats)
    assert vector_answers == python_answers, f"{name}: answers differ"
    assert vector_answers.encoded == python_answers.encoded
    assert vector_stats.delta_sizes == python_stats.delta_sizes
    if expect_vector:
        assert vector_stats.vector_batches > 0, (
            f"{name}: the vector backend never engaged")
    else:
        # uncertified plan shape: the kernel must have stepped aside
        assert vector_stats.vector_batches == 0
        assert vector_stats.backend == "python"
    return {
        "workload": name,
        "backend": vector_stats.backend,
        "edb_rows": db.total_facts(),
        "answers": len(vector_answers),
        "rounds": vector_stats.rounds,
        "vector_s": round(vector_s, 4),
        "python_s": round(python_s, 4),
        "speedup": round(python_s / max(vector_s, 1e-9), 2),
    }


def test_vector_backend_speedup(save_artifact, artifact_dir):
    tc_system = parse_system(TC_SYSTEM_TEXT)
    hop_system = parse_system(THREE_HOP_TEXT)
    tc_20k = _tc_database(_parallel_chains(2500, 8))
    hop_20k = _layered_3hop_database(555, 12)
    bound = Query.parse("P(c0_n0, Y)")

    results = [
        _measure("tc-20k-full-enum", tc_system, tc_20k),
        _measure("tc-20k-bound-query", tc_system, tc_20k, query=bound),
        _measure("3hop-20k-compressed-chain", hop_system, hop_20k,
                 repeats=3, expect_vector=False),
        _measure("stub-20k-full-enum", tc_system, tc_20k, repeats=3,
                 stub=True),
    ]

    by_name = {r["workload"]: r for r in results}
    full = by_name["tc-20k-full-enum"]
    assert full["answers"] >= 100_000
    if HAVE_NUMPY:
        for gated in ("tc-20k-full-enum", "tc-20k-bound-query"):
            row = by_name[gated]
            assert row["backend"] == "numpy"
            assert row["speedup"] >= TARGET_SPEEDUP, (
                f"vector kernel: {gated} only {row['speedup']}x vs "
                f"the tuple-set loop (gate {TARGET_SPEEDUP}x)")
    stub = by_name["stub-20k-full-enum"]
    assert stub["backend"] == "stub"
    for within_noise in ("stub-20k-full-enum",
                         "3hop-20k-compressed-chain"):
        row = by_name[within_noise]
        assert row["speedup"] >= FLOOR_WITHIN_NOISE, (
            f"{within_noise} collapsed to {row['speedup']}x of the "
            f"tuple-set loop (floor {FLOOR_WITHIN_NOISE}x)")

    payload = {
        "bench": "vector",
        "engine": "semi-naive",
        "numpy": HAVE_NUMPY,
        "cpus": _cpus(),
        "target_speedup": TARGET_SPEEDUP,
        "floor_within_noise": FLOOR_WITHIN_NOISE,
        "results": results,
    }
    (artifact_dir / "BENCH_vector.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_artifact("perf_vector", text_table(
        ["workload", "backend", "EDB rows", "answers", "rounds",
         "vector s", "python s", "speedup"],
        [[p["workload"], p["backend"], p["edb_rows"], p["answers"],
          p["rounds"], p["vector_s"], p["python_s"],
          f"{p['speedup']}x"] for p in results]))


def test_vector_smoke_parity():
    """The cheap always-on check: both backends agree on a small TC
    and the vector counters move only on the vector side."""
    system = parse_system(TC_SYSTEM_TEXT)
    db = _tc_database(_parallel_chains(250, 8))
    stats_v, stats_p = EvaluationStats(), EvaluationStats()
    vector = SemiNaiveEngine(backend="vector").evaluate(
        system, db.copy(), None, stats_v)
    python = SemiNaiveEngine(backend="python").evaluate(
        system, db.copy(), None, stats_p)
    assert vector == python
    assert stats_v.vector_batches > 0 and stats_p.vector_batches == 0
    assert stats_v.delta_sizes == stats_p.delta_sizes
