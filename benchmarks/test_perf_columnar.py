"""PERF: the lazy columnar answer pipeline vs the raw value pipeline.

PR 5's dictionary encoding won every bound query but *lost* full
enumeration: the answer boundary eagerly rebuilt ~112k value tuples
per query (``BENCH_intern.json`` recorded 0.46x on
``tc-20k-full-enum``).  The columnar pipeline removes that tax — the
engines return a lazy :class:`~repro.ra.answers.AnswerSet`, and
materialisation decodes per distinct code per column.  This bench
times the *whole* consumer journey on interned vs ``intern=False``
twins, with identical answers asserted outside the timed region:

* ``*-full-enum`` — the free enumeration, measured exactly as
  ``BENCH_intern.json`` measured the 0.46x row: the engine call that
  hands the caller the complete answer object, equality asserted
  outside the timed region.  The lazy boundary makes this the pure
  kernel comparison — the gate is ≥1.0x at 20k rows;
* ``tc-20k-full-materialise`` — the worst-case consumer: evaluate
  *and* force every value row back out (decode plus the frozenset
  the pre-columnar API eagerly built).  Reported honestly — interning
  roughly breaks even here (the decode costs about what the kernel
  saves), which is the fix for 0.46x, not a free lunch — and guarded
  against sliding back toward the old regression;
* ``*-bound-query`` — evaluate a one-constant query and materialise
  its handful of rows; the original ≥1.5x kernel win must survive the
  new boundary;
* ``server-20k-full-enum`` — evaluate plus the HTTP server's streamed
  JSON render of the full enumeration, same renderer for both modes,
  so the ratio reflects fixpoint + decode, not JSON formatting.

Results land in ``benchmarks/output/BENCH_columnar.json`` and are
gated against ``benchmarks/baselines/BENCH_columnar.json`` by
``benchmarks/compare.py``.
"""

import json
import os
import time

from repro.core import text_table
from repro.datalog.parser import parse_system
from repro.engine import EvaluationStats, Query, SemiNaiveEngine
from repro.ra import AnswerSet, Database
from repro.server import QueryServer
from repro.session import DeductiveDatabase

TC_SYSTEM_TEXT = "P(x, y) :- A(x, z), P(z, y)."  # the paper's (s1a), class A1
TARGET_FULL_ENUM = 1.0
TARGET_BOUND = 1.5
#: forcing every value row costs the decode the kernel win pays for;
#: the guard keeps the trade from sliding back toward PR 5's 0.46x
FLOOR_FULL_MATERIALISE = 0.7


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _parallel_chains(chains: int, length: int) -> list[tuple]:
    edges: list[tuple] = []
    for c in range(chains):
        edges.extend((f"c{c}_n{i}", f"c{c}_n{i + 1}")
                     for i in range(length))
    return edges


def _tc_relations(edges: list[tuple]) -> dict:
    nodes = sorted({n for edge in edges for n in edge})
    return {"A": edges, "P__exit": [(n, n) for n in nodes]}


def _twins(relations: dict) -> tuple[Database, Database]:
    return (Database.from_dict(relations),
            Database.from_dict(relations, intern=False))


class _Sink:
    """A write-only handler double for the server's streamed render."""

    def __init__(self) -> None:
        self.written = 0
        self.wfile = self

    def write(self, data) -> None:
        self.written += len(data)

    def send_response(self, status) -> None:
        pass

    def send_header(self, name, value) -> None:
        pass

    def end_headers(self) -> None:
        pass


def _materialise(answers):
    """Force the value rows — the decode for an AnswerSet, a no-op
    walk for the raw frozenset (both sides pay the iteration)."""
    return answers.decoded() if isinstance(answers, AnswerSet) \
        else frozenset(answers)


def _time_consumer(system, db, query, repeats, consume):
    """Best-of-*repeats* of evaluate + *consume*; later runs reuse the
    version-tagged join tables cached on *db* (warm steady state for
    both storage modes), but every run returns a fresh answer set, so
    any decode *consume* forces is inside every timed run."""
    best = float("inf")
    answers = None
    for _ in range(repeats):
        started = time.perf_counter()
        answers = SemiNaiveEngine().evaluate(system, db, query,
                                             EvaluationStats())
        consume(answers)
        best = min(best, time.perf_counter() - started)
    return best, answers


def _measure(name, system, twins, query=None, repeats=3,
             consume=_materialise) -> dict:
    interned, raw = twins
    interned_s, interned_answers = _time_consumer(
        system, interned, query, repeats, consume)
    raw_s, raw_answers = _time_consumer(
        system, raw, query, repeats, consume)
    assert interned_answers == raw_answers, f"{name}: answers differ"
    return {
        "workload": name,
        "edb_rows": interned.total_facts(),
        "answers": len(interned_answers),
        "interned_s": round(interned_s, 4),
        "raw_s": round(raw_s, 4),
        "speedup": round(raw_s / max(interned_s, 1e-9), 2),
    }


def test_columnar_pipeline_speedup(save_artifact, artifact_dir):
    system = parse_system(TC_SYSTEM_TEXT)
    bound = Query.parse("P(c0_n0, Y)")
    tc_10k = _twins(_tc_relations(_parallel_chains(1250, 8)))
    tc_20k = _twins(_tc_relations(_parallel_chains(2500, 8)))

    # the server's streamed JSON render, same code path both modes
    renderer = QueryServer(DeductiveDatabase(), port=0)
    renderer.close()
    stats_shape = EvaluationStats().to_dict()

    def render(answers):
        rows = (answers.sorted_rows() if isinstance(answers, AnswerSet)
                else sorted(answers, key=repr))
        renderer._send_query_response(
            _Sink(), query="P(X, Y)", engine="semi-naive", rows=rows,
            duration_s=0.0, stats=stats_shape)

    results = [
        _measure("tc-20k-full-enum", system, tc_20k, repeats=4,
                 consume=len),
        _measure("tc-10k-full-enum", system, tc_10k, repeats=4,
                 consume=len),
        _measure("tc-20k-full-materialise", system, tc_20k, repeats=4),
        _measure("tc-20k-bound-query", system, tc_20k, query=bound,
                 repeats=7),
        _measure("server-20k-full-enum", system, tc_20k, repeats=3,
                 consume=render),
    ]

    by_name = {r["workload"]: r for r in results}
    full = by_name["tc-20k-full-enum"]
    assert full["answers"] >= 100_000
    assert full["speedup"] >= TARGET_FULL_ENUM, (
        f"lazy boundary: full enumeration only {full['speedup']}x "
        f"vs raw (target {TARGET_FULL_ENUM}x — interning must not "
        f"lose enumeration any more)")
    assert by_name["tc-20k-bound-query"]["speedup"] >= TARGET_BOUND, (
        f"bound-query win eroded to "
        f"{by_name['tc-20k-bound-query']['speedup']}x "
        f"(target {TARGET_BOUND}x)")
    materialise = by_name["tc-20k-full-materialise"]
    assert materialise["speedup"] >= FLOOR_FULL_MATERIALISE, (
        f"full materialisation fell to {materialise['speedup']}x — "
        f"the decode tax is growing back "
        f"(floor {FLOOR_FULL_MATERIALISE}x)")

    payload = {
        "bench": "columnar",
        "engine": "semi-naive",
        "cpus": _cpus(),
        "target_full_enum": TARGET_FULL_ENUM,
        "target_bound": TARGET_BOUND,
        "floor_full_materialise": FLOOR_FULL_MATERIALISE,
        "results": results,
    }
    (artifact_dir / "BENCH_columnar.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_artifact("perf_columnar", text_table(
        ["workload", "EDB rows", "answers", "interned s", "raw s",
         "speedup"],
        [[p["workload"], p["edb_rows"], p["answers"], p["interned_s"],
          p["raw_s"], f"{p['speedup']}x"] for p in results]))


def test_columnar_smoke_parity():
    """The cheap always-on check: a small enumeration is identical,
    lazy on the interned side, and stays undecoded until consumed."""
    twins = _twins(_tc_relations(_parallel_chains(250, 8)))
    system = parse_system(TC_SYSTEM_TEXT)
    answers = SemiNaiveEngine().evaluate(system, twins[0], None,
                                         EvaluationStats())
    raw = SemiNaiveEngine().evaluate(system, twins[1], None,
                                     EvaluationStats())
    assert isinstance(answers, AnswerSet) and not answers.is_decoded
    assert len(answers) == len(raw) and not answers.is_decoded
    assert answers == raw
