"""TAB6 (extension): the query-capability matrix per class.

The paper's per-class discussion implies which query forms benefit
from compilation; this table regenerates that judgement for one
representative of each class and pins the paper's explicit per-query
claims (s12's dvv vs vvd, s9's hopeless bindings, the stable
formulas' universal pushdown)."""

from repro.core import capability_table
from repro.core.advisor import advise
from repro.workloads import CATALOGUE

REPRESENTATIVES = ("s1a", "s3", "s4", "s8", "s9", "s10", "s11", "s12")


def test_tab6_capability_matrix(benchmark, save_artifact):
    def build():
        return {name: advise(CATALOGUE[name].system())
                for name in REPRESENTATIVES}

    matrices = benchmark(build)

    # the paper's explicit per-query claims
    s12 = {cap.adornment: cap for cap in matrices["s12"]}
    assert s12[frozenset({0})].pushdown == "full"       # dvv: Example 14
    assert s12[frozenset({2})].binding.prefix_length == 0  # vvd immediate
    s9 = {cap.adornment: cap for cap in matrices["s9"]}
    assert all(cap.pushdown == "none" for cap in s9.values())
    s1a = {cap.adornment: cap for cap in matrices["s1a"]}
    assert all(cap.pushdown == "full"
               for adornment, cap in s1a.items() if adornment)
    s8 = {cap.adornment: cap for cap in matrices["s8"]}
    assert all(cap.pushdown == "finite" for cap in s8.values())

    sections = []
    for name in REPRESENTATIVES:
        sections.append(f"== {name} "
                        f"({CATALOGUE[name].paper_class}) ==")
        sections.append(capability_table(CATALOGUE[name].system()))
        sections.append("")
    save_artifact("table6_capabilities", "\n".join(sections))
