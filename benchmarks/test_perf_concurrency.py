"""PERF: snapshot-isolated concurrent reads vs the global query lock.

The service layer (PR 7) removed the single ``_query_lock`` that
serialised every ``/query`` evaluation.  This bench measures what that
bought: four concurrent clients, each free-querying its own
transitive-closure predicate over a 5k-edge chain forest (20k EDB rows
total) through :class:`~repro.service.QueryService`, with the sharded
engine at ``workers=1`` — the service deployment where each request's
join work runs in a forked worker process and the calling thread
blocks in pool IPC with the GIL released.  Under the old lock those
four single-worker evaluations could not overlap at all; without it
they overlap up to the core count.

The baseline is the same service with an explicit global lock wrapped
around every ``run`` call — the PR 6 server's concurrency model,
reconstructed exactly.  Answers are asserted identical before any
timing is trusted.  The headline claim, ≥2× aggregate read throughput
with 4 clients, is asserted only when the machine actually has 4
cores to offer (CI runners do; a 1-core container cannot overlap
anything and merely records its numbers).  Results land in
``benchmarks/output/BENCH_concurrency.json``, uploaded as a CI
artifact and compared against ``benchmarks/baselines/`` by the
bench-regression job.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.core import text_table
from repro.service import EpochManager, QueryService
from repro.session import DeductiveDatabase

CLIENTS = 4
CHAINS = 625   # per predicate: 625 chains x 8 edges = 5k rows
LENGTH = 8
TARGET_SPEEDUP = 2.0
REPEATS = 3


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _build_session() -> DeductiveDatabase:
    """One session, one TC system per client over its own relation."""
    session = DeductiveDatabase()
    for client in range(CLIENTS):
        session.add_rule(f"P{client}(x, y) :- "
                         f"A{client}(x, z), P{client}(z, y).")
        session.add_rule(f"P{client}(x, y) :- A{client}(x, y).")
        session.add_facts(
            f"A{client}",
            [(f"p{client}_c{c}_n{i}", f"p{client}_c{c}_n{i + 1}")
             for c in range(CHAINS) for i in range(LENGTH)])
    return session


def _expected_answers() -> int:
    return CHAINS * LENGTH * (LENGTH + 1) // 2


def _run_clients(service: QueryService,
                 lock: threading.Lock | None) -> tuple[float, list]:
    """Makespan of the four concurrent client queries (one each).

    With *lock*, every evaluation is wrapped in the shared global
    lock — the old server's serialisation, reconstructed.
    """
    # bust the cross-query answer cache so every repeat re-evaluates
    service.manager.current.session._answer_cache.clear()
    results: list = [None] * CLIENTS
    errors: list = []
    barrier = threading.Barrier(CLIENTS + 1)

    def client(index: int) -> None:
        barrier.wait()
        try:
            if lock is not None:
                with lock:
                    results[index] = service.run(
                        f"P{index}(X, Y)", workers=1)
            else:
                results[index] = service.run(f"P{index}(X, Y)",
                                             workers=1)
        except Exception as error:  # surfaced after join
            errors.append(error)

    pool = [threading.Thread(target=client, args=(i,))
            for i in range(CLIENTS)]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed, results


def test_concurrent_read_throughput(save_artifact, artifact_dir):
    session = _build_session()
    service = QueryService(EpochManager(session),
                           max_inflight=CLIENTS)
    expected = _expected_answers()

    locked_best = float("inf")
    concurrent_best = float("inf")
    global_lock = threading.Lock()
    for _ in range(REPEATS):
        elapsed, results = _run_clients(service, global_lock)
        locked_best = min(locked_best, elapsed)
        for result in results:
            assert len(result.answers) == expected
            assert result.outcome == "ok"
            assert result.stats.pool_fallbacks == 0, \
                "worker pool fell back to in-process"
        elapsed, results = _run_clients(service, None)
        concurrent_best = min(concurrent_best, elapsed)
        for result in results:
            assert len(result.answers) == expected
            assert result.outcome == "ok"
            assert result.stats.pool_fallbacks == 0, \
                "worker pool fell back to in-process"

    speedup = round(locked_best / max(concurrent_best, 1e-9), 2)
    cpus = _cpus()
    asserted = cpus >= CLIENTS
    if asserted:
        assert speedup >= TARGET_SPEEDUP, (
            f"concurrent reads only {speedup}x over the global-lock "
            f"baseline with {CLIENTS} clients on {cpus} cores "
            f"(target {TARGET_SPEEDUP}x)")

    result_row = {
        "workload": f"tc-20k-{CLIENTS}clients",
        "edb_rows": CLIENTS * CHAINS * LENGTH,
        "answers_per_client": expected,
        "clients": CLIENTS,
        "locked_s": round(locked_best, 4),
        "concurrent_s": round(concurrent_best, 4),
        "speedup": speedup,
    }
    payload = {
        "bench": "concurrency",
        "clients": CLIENTS,
        "cpus": cpus,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_asserted": asserted,
        "results": [result_row],
    }
    (artifact_dir / "BENCH_concurrency.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_artifact("perf_concurrency", text_table(
        ["workload", "EDB rows", "answers/client", "locked s",
         "concurrent s", "speedup"],
        [[result_row["workload"], result_row["edb_rows"],
          result_row["answers_per_client"], result_row["locked_s"],
          result_row["concurrent_s"], f"{speedup}x"]]))
