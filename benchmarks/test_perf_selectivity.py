"""PERF3: selection pushdown vs query selectivity.

Sweep the query form of the stable 3-D formula (s3) from fully bound
to fully free: every bound position cuts the compiled engine's work,
while semi-naive always computes the whole fixpoint.  The crossover
the paper's strategy implies: with nothing bound, compiled ≈ fixpoint
evaluation (no selection to push)."""

import pytest

from repro.core import text_table
from repro.engine import (CompiledEngine, EvaluationStats, Query,
                          SemiNaiveEngine)
from repro.workloads import CATALOGUE, random_digraph


def _s3_database(nodes: int = 16, seed: int = 6):
    from repro.ra import Database
    return Database.from_dict({
        "A": random_digraph(nodes, 2 * nodes, seed=seed),
        "B": random_digraph(nodes, 2 * nodes, seed=seed + 1),
        "C": random_digraph(nodes, 2 * nodes, seed=seed + 2),
        "P__exit": [(f"v{i}", f"v{i}", f"v{i}") for i in range(nodes)],
    })


FORMS = ["ddd", "ddv", "dvv", "vvv"]


def test_perf3_selectivity_sweep(benchmark, save_artifact):
    system = CATALOGUE["s3"].system()
    db = _s3_database()

    def sweep():
        rows = []
        for form in FORMS:
            pattern = tuple("v0" if ch == "d" else None for ch in form)
            query = Query("P", pattern)
            semi, comp = EvaluationStats(), EvaluationStats()
            semi_answers = SemiNaiveEngine().evaluate(system, db, query,
                                                      semi)
            comp_answers = CompiledEngine().evaluate(system, db, query,
                                                     comp)
            assert semi_answers == comp_answers, form
            rows.append((form, len(comp_answers), semi.probes,
                         comp.probes))
        return rows

    rows = benchmark(sweep)
    by_form = {form: comp for form, _, _, comp in rows}
    # more bound positions -> less compiled work, monotonically
    assert by_form["ddd"] <= by_form["ddv"] <= by_form["dvv"]
    # selective queries: compiled does a fraction of semi-naive's work
    semi_ddv = next(semi for form, _, semi, _ in rows if form == "ddv")
    assert by_form["ddv"] < semi_ddv / 3
    save_artifact("perf3_selectivity", text_table(
        ["query form", "answers", "semi-naive probes",
         "compiled probes"], [list(r) for r in rows]))


@pytest.mark.parametrize("form", ["dv", "vd", "dd", "vv"])
def test_perf3_tc_forms(benchmark, form):
    """All four adornments of transitive closure stay correct and the
    d-first form is the cheapest."""
    from repro.ra import Database
    from repro.workloads import chain, reflexive_exit
    system = CATALOGUE["s1a"].system()
    db = Database.from_dict({"A": chain(30),
                             "P__exit": reflexive_exit(30)})
    pattern = tuple("n5" if ch == "d" else None for ch in form)
    query = Query("P", pattern)

    def run():
        stats = EvaluationStats()
        answers = CompiledEngine().evaluate(system, db, query, stats)
        return answers, stats

    answers, stats = benchmark(run)
    assert answers == SemiNaiveEngine().evaluate(system, db, query)
