"""PERF: sharded parallel fixpoint vs the sequential set-at-a-time path.

The semi-naive fixpoint is run three ways on 10k–20k-row
transitive-closure workloads — sequentially (the PR 1 kernel), through
the deterministic in-process sharder (``workers=0``), and across a
4-worker process pool — with identical answer sets asserted before any
timing is trusted.  The headline claim, ≥1.8× wall-clock with 4
workers on the 20k-row 3-hop workload (the catalogue's
``compressed_chain`` shape, where join work dominates shipping cost),
is asserted only when the machine
actually has 4 cores to offer (CI runners do; a 1-core container
cannot parallelize anything and merely records its numbers).  Results
land in ``benchmarks/output/BENCH_sharded.json``, uploaded as a CI
artifact and compared against ``benchmarks/baselines/`` by the
bench-regression job.
"""

import json
import os
import time

from repro.core import text_table
from repro.datalog.parser import parse_system
from repro.engine import (EvaluationStats, SemiNaiveEngine,
                          ShardedSemiNaiveEngine)
from repro.ra import Database
from repro.workloads import CATALOGUE, random_edb

TC_SYSTEM_TEXT = "P(x, y) :- A(x, z), P(z, y)."  # the paper's (s1a), class A1
#: The catalogue's ``compressed_chain`` shape (class A5): transitive
#: closure through a composed three-relation edge.  Three probes and a
#: branching extend per delta row make each shipped byte buy ~10x the
#: join work of plain TC — the workload where sharding should shine.
THREE_HOP_TEXT = "P(x, y) :- A(x, m), B(m, n), C(n, z), P(z, y)."
WORKERS = 4
TARGET_SPEEDUP = 1.8


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _parallel_chains(chains: int, length: int) -> list[tuple]:
    """*chains* disjoint chains of *length* edges — 10k+ EDB rows with
    a closure that stays linear in the input (unlike one long chain)."""
    edges: list[tuple] = []
    for c in range(chains):
        edges.extend((f"c{c}_n{i}", f"c{c}_n{i + 1}")
                     for i in range(length))
    return edges


def _tc_database(edges: list[tuple]) -> Database:
    nodes = sorted({n for edge in edges for n in edge})
    return Database.from_dict({"A": edges,
                               "P__exit": [(n, n) for n in nodes]})


def _layered_3hop_database(width: int, levels: int,
                           branching: int = 3) -> Database:
    """A layered DAG for the 3-hop rule: *levels* edge layers of
    *width* nodes, layer ``l`` stored in relation A/B/C by ``l % 3``,
    each node feeding *branching* nodes of the next layer.  A delta row
    fans out through branching**3 converging A-B-C paths, so join work
    dominates shipping cost — the regime the issue's 1.8x claim is
    about.  Exits sit on the A-aligned levels only: every shipped row
    can actually derive."""
    relations: dict[str, list[tuple]] = {"A": [], "B": [], "C": []}
    for level in range(levels):
        rows = relations["ABC"[level % 3]]
        for col in range(width):
            src = f"l{level}_c{col}"
            rows.extend((src, f"l{level + 1}_c{(col + b) % width}")
                        for b in range(branching))
    exits = [(f"l{level}_c{col}",) * 2
             for level in range(0, levels + 1, 3) for col in range(width)]
    return Database.from_dict({**relations, "P__exit": exits})


def _time_engine(engine, system, db, repeats: int = 2):
    best = float("inf")
    answers, stats = frozenset(), EvaluationStats()
    for _ in range(repeats):
        run_stats = EvaluationStats()
        started = time.perf_counter()
        answers = engine.evaluate(system, db, stats=run_stats)
        best = min(best, time.perf_counter() - started)
        stats = run_stats
    return best, answers, stats


def _measure(name: str, system, db) -> dict:
    seq_s, seq_answers, seq_stats = _time_engine(
        SemiNaiveEngine(), system, db)
    zero_s, zero_answers, _ = _time_engine(
        ShardedSemiNaiveEngine(workers=0), system, db)
    par_s, par_answers, par_stats = _time_engine(
        ShardedSemiNaiveEngine(workers=WORKERS), system, db)
    assert par_answers == seq_answers, f"{name}: pool answers differ"
    assert zero_answers == seq_answers, f"{name}: workers=0 differs"
    assert par_stats.pool_fallbacks == 0, f"{name}: pool fell back"
    return {
        "workload": name,
        "edb_rows": db.total_facts(),
        "answers": len(seq_answers),
        "rounds": seq_stats.rounds,
        "sequential_s": round(seq_s, 4),
        "inprocess_sharded_s": round(zero_s, 4),
        "workers": WORKERS,
        "sharded_s": round(par_s, 4),
        "speedup": round(seq_s / max(par_s, 1e-9), 2),
        "shard_counts": par_stats.shard_counts,
        "max_skew": round(max(par_stats.shard_skew), 3)
        if par_stats.shard_skew else None,
        "pool_round_trip_s": round(par_stats.pool_round_trip_s, 4),
    }


def test_sharded_speedup(save_artifact, artifact_dir):
    tc_system = parse_system(TC_SYSTEM_TEXT)
    hop_system = parse_system(THREE_HOP_TEXT)
    points = [
        ("tc-chains-10k", tc_system,
         _tc_database(_parallel_chains(1250, 8))),
        ("tc-chains-20k", tc_system,
         _tc_database(_parallel_chains(2500, 8))),
        ("tc-3hop-20k", hop_system, _layered_3hop_database(555, 12)),
    ]
    results = [_measure(name, system, db)
               for name, system, db in points]

    cpus = _cpus()
    asserted = cpus >= WORKERS
    if asserted:
        headline = results[-1]
        assert headline["edb_rows"] >= 20_000
        assert headline["speedup"] >= TARGET_SPEEDUP, (
            f"sharded only {headline['speedup']}x with {WORKERS} "
            f"workers on the 20k-row 3-hop TC workload "
            f"(target {TARGET_SPEEDUP}x on {cpus} cores)")

    payload = {
        "bench": "sharded",
        "engine": "sharded",
        "workers": WORKERS,
        "cpus": cpus,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_asserted": asserted,
        "results": results,
    }
    (artifact_dir / "BENCH_sharded.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_artifact("perf_sharded", text_table(
        ["workload", "EDB rows", "answers", "seq s", "w=0 s",
         f"w={WORKERS} s", "speedup", "skew"],
        [[p["workload"], p["edb_rows"], p["answers"],
          p["sequential_s"], p["inprocess_sharded_s"], p["sharded_s"],
          f"{p['speedup']}x", p["max_skew"]] for p in results]))


def test_workers0_matches_seminaive_on_catalogue():
    """The acceptance bar: the deterministic executor reproduces the
    sequential engine exactly — answers and per-round deltas — on the
    full paper catalogue."""
    for name in sorted(CATALOGUE):
        system = CATALOGUE[name].system()
        db = random_edb(system, nodes=6, tuples_per_relation=8, seed=0)
        seq_stats, sh_stats = EvaluationStats(), EvaluationStats()
        sequential = SemiNaiveEngine().evaluate(system, db,
                                                stats=seq_stats)
        sharded = ShardedSemiNaiveEngine(workers=0).evaluate(
            system, db, stats=sh_stats)
        assert sharded == sequential, name
        assert sh_stats.delta_sizes == seq_stats.delta_sizes, name
