# Convenience targets for the reproduction.

.PHONY: install test bench artifacts examples doctest lint-self all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

artifacts: bench
	@ls benchmarks/output/

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null \
	    && echo ok || echo FAILED; done

doctest:
	pytest --doctest-modules src/repro -q

all: install test bench doctest
