#!/usr/bin/env python3
"""Compiled formulas as pure relational algebra.

The paper's thesis is that a recursive query can be *compiled*: after
the graph analysis, "query processing can be performed directly on the
compiled formulas without performing resolutions at run time".  This
example makes that literal — each ∪k term of the compiled formula for
a stable rule is one closed relational-algebra expression over the
EDB, built by :mod:`repro.core.algebra` and evaluated by the
:mod:`repro.ra` expression interpreter, with no rule engine involved.

Run:  python examples/compiled_algebra.py
"""

from repro import Query, compile_query, parse_system
from repro.core.algebra import algebraic_answers, term_expression
from repro.core.compile import compile_stable
from repro.engine import CompiledEngine
from repro.ra import Database, evaluate
from repro.workloads import chain, reflexive_exit


def main() -> None:
    system = parse_system("P(x, y) :- A(x, z), P(z, y).")
    compiled = compile_query(system, "dv")
    print("rule:            ", system.recursive)
    print("compiled formula:", compiled.plan_text)
    print()

    compilation = compile_stable(system)
    db = Database.from_dict({"A": chain(6),
                             "P__exit": reflexive_exit(6)})
    pattern = ("n0", None)

    print("evaluating each ∪k term as a closed algebra expression:")
    for depth in range(4):
        term = term_expression(compilation, pattern, depth)
        rows = sorted(evaluate(term, db).rows)
        print(f"  k={depth}: σ_n0·A^{depth} ⋈ E  =  {rows}")

    union = algebraic_answers(compilation, pattern, db, max_depth=7)
    engine = CompiledEngine().evaluate(system, db,
                                       Query.parse("P(n0, Y)"))
    print()
    print(f"∪k over 8 terms: {len(union)} answers")
    print(f"engine says:     {len(engine)} answers")
    print("identical:      ", union == engine)

    # The expression tree itself, for the curious:
    print()
    print("the k=2 expression tree (truncated):")
    text = repr(term_expression(compilation, pattern, 2))
    print(" ", text[:160], "…")


if __name__ == "__main__":
    main()
