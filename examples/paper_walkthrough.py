#!/usr/bin/env python3
"""Regenerate every figure of the paper, section by section, to stdout.

The pytest benches assert the figures' properties; this script is the
human-readable companion: Figures 1–6 with the paper's claims printed
next to the measured values, plus the classification table.

Run:  python examples/paper_walkthrough.py
"""

from repro import classification_table, resolution_graph
from repro.core import binding_sequence, classify, compile_query
from repro.datalog import Variable
from repro.graphs import (ascii_figure, ascii_resolution, build_igraph,
                          directed_path_weight)
from repro.workloads import CATALOGUE, paper_systems

RULER = "=" * 72


def figure1() -> None:
    print(RULER)
    print("Figure 1 — the I-graphs of Example 1")
    print(RULER)
    for name, label in (("s1a", "(a)"), ("s1b", "(b)")):
        system = CATALOGUE[name].system()
        print(ascii_figure(build_igraph(system.recursive),
                           f"Figure 1{label}: {system.recursive}"))
        print()


def figure2() -> None:
    print(RULER)
    print("Figure 2 — resolution graphs of (s2a)")
    print(RULER)
    system = CATALOGUE["s2a"].system()
    for level in (1, 2):
        print(ascii_resolution(resolution_graph(system, level),
                               f"level {level}:"))
        print()
    second = resolution_graph(system, 2)
    weight = directed_path_weight(second.graph, Variable("x"),
                                  Variable("z_1"))
    print(f"paper: 'the weight from x to z₁ is two' — measured: "
          f"{weight}")
    print()


def figure3() -> None:
    print(RULER)
    print("Figure 3 — the I-graph of (s8), a bounded cycle")
    print(RULER)
    system = CATALOGUE["s8"].system()
    result = classify(system)
    print(ascii_figure(result.graph))
    print(f"paper: upper bound 2 — computed rank bound: "
          f"{result.rank_bound}")
    print()


def figures_4_to_6() -> None:
    cases = [
        ("Figure 4 — (s9), unbounded cycle", "s9",
         [("dvv", "σE, (σA) X (∪k [(E⋈B)(BA)^k])"),
          ("vvd", "σE, (∃ ∪k [(AB)^k (E⋈B)]) A")]),
        ("Figure 5 — (s11), dependent cycles", "s11",
         [("dv", "σE, σA-C-B-E, ∪k σA-C-B-[{A,B}-C]^k-E")]),
        ("Figure 6 — (s12), mixed", "s12",
         [("dvv", "σE, ∪k σA-C-B-[{A,B}-C]^k-E-D^{k+1}")]),
    ]
    for title, name, queries in cases:
        print(RULER)
        print(title)
        print(RULER)
        system = CATALOGUE[name].system()
        for level in (1, 2):
            print(ascii_resolution(resolution_graph(system, level),
                                   f"level {level}:"))
            print()
        for form, paper_plan in queries:
            compiled = compile_query(system, form)
            print(f"query P({form}):")
            print(f"  paper: {paper_plan}")
            print(f"  ours:  {compiled.plan_text}")
        if name == "s12":
            sequence = binding_sequence(system.recursive,
                                        frozenset({0}))
            print(f"  binding sequence (paper: dvv → ddv → ddv): "
                  f"{sequence.describe(3)}")
        print()


def table1() -> None:
    print(RULER)
    print("The classification of every example (sections 3–10)")
    print(RULER)
    print(classification_table(paper_systems()))


if __name__ == "__main__":
    figure1()
    figure2()
    figure3()
    figures_4_to_6()
    table1()
