#!/usr/bin/env python3
"""Genealogy: ancestor and same-generation queries over a family tree.

Two classic deductive-database recursions the paper's intro motivates:

* ``anc(x, y)`` — transitive closure of ``parent`` (class A1 ⊕ A2,
  strongly stable: constants push through the recursion);
* ``sg(x, y)`` — same-generation cousins via ``up``/``down`` chains
  (two disjoint unit rotational cycles, also stable).

Run:  python examples/genealogy.py
"""

from repro import (CompiledEngine, Database, Query, classify,
                   compile_query, parse_system)
from repro.engine import EvaluationStats, SemiNaiveEngine

# Three generations: grandparents -> parents -> children.
PARENT = [
    ("alice", "carol"), ("alice", "dave"),
    ("bob", "carol"),
    ("carol", "erin"), ("carol", "frank"),
    ("dave", "grace"),
    ("erin", "heidi"), ("frank", "ivan"), ("grace", "judy"),
]


def ancestor_demo() -> None:
    system = parse_system("""
        anc(x, y) :- parent(x, z), anc(z, y).
        anc(x, y) :- parent(x, y).
    """)
    print("ancestor rule:", system.recursive)
    print("classification:", classify(system).describe())
    print("compiled P(d,v):", compile_query(system, "dv").plan_text)

    db = Database.from_dict({"parent": PARENT})
    engine = CompiledEngine()
    for person in ("alice", "carol"):
        answers = engine.evaluate(system, db,
                                  Query.parse(f"anc({person}, Y)"))
        names = sorted(row[1] for row in answers)
        print(f"  descendants of {person}: {', '.join(names)}")

    ancestors = engine.evaluate(system, db, Query.parse("anc(X, judy)"))
    print("  ancestors of judy:",
          ", ".join(sorted(row[0] for row in ancestors)))


def same_generation_demo() -> None:
    system = parse_system("""
        sg(x, y) :- up(x, u), sg(u, v), down(v, y).
        sg(x, y) :- eq(x, y).
    """)
    print()
    print("same-generation rule:", system.recursive)
    print("classification:", classify(system).describe())

    people = sorted({p for pair in PARENT for p in pair})
    db = Database.from_dict({
        "up": [(child, parent) for parent, child in PARENT],
        "down": PARENT,
        "eq": [(p, p) for p in people],
    })

    compiled, semi = EvaluationStats(), EvaluationStats()
    query = Query.parse("sg(heidi, Y)")
    fast = CompiledEngine().evaluate(system, db, query, compiled)
    slow = SemiNaiveEngine().evaluate(system, db, query, semi)
    assert fast == slow
    cousins = sorted(row[1] for row in fast)
    print(f"  same generation as heidi: {', '.join(cousins)}")
    print(f"  probes: compiled {compiled.probes} vs semi-naive "
          f"{semi.probes}")


if __name__ == "__main__":
    ancestor_demo()
    same_generation_demo()
