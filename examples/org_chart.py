#!/usr/bin/env python3
"""Org chart: the DeductiveDatabase session over a stratified program.

A management database with a non-recursive view (``senior_manages``),
a recursion over the base relation (``chain_of_command``), and a
recursion *over the view* (``senior_chain``) — the session
materialises strata bottom-up and compiles the queried recursion with
selection pushdown.  ``explain`` shows the compiled formula the paper
would write.

Run:  python examples/org_chart.py
"""

from repro import DeductiveDatabase
from repro.engine import EvaluationStats

PROGRAM = """
    % base facts: manages(boss, report), grade(person, level)
    manages(maria, omar).   manages(maria, priya).
    manages(omar, quinn).   manages(omar, ravi).
    manages(priya, sofia).  manages(sofia, tomas).
    grade(maria, exec).  grade(omar, senior).  grade(priya, senior).
    grade(sofia, senior).

    % view: management edges between senior+ staff only
    senior_manages(x, y) :- manages(x, y), grade(x, g), grade(y, h).

    % recursion over the base relation
    chain_of_command(x, y) :- manages(x, z), chain_of_command(z, y).
    chain_of_command(x, y) :- manages(x, y).

    % recursion over the view (a different stratum)
    senior_chain(x, y) :- senior_manages(x, z), senior_chain(z, y).
    senior_chain(x, y) :- senior_manages(x, y).
"""


def main() -> None:
    ddb = DeductiveDatabase()
    ddb.load(PROGRAM)
    print(ddb)
    print()

    print("classification of chain_of_command:",
          ddb.classification("chain_of_command").describe())
    print()
    print(ddb.explain("chain_of_command(maria, Y)"))
    print()

    stats = EvaluationStats()
    reports = ddb.query("chain_of_command(maria, Y)", stats=stats)
    print(f"everyone under maria ({stats.probes} probes):")
    for _, person in sorted(reports):
        print(f"  {person}")

    print()
    senior = ddb.query("senior_chain(maria, Y)")
    print("senior chain under maria:",
          ", ".join(sorted(person for _, person in senior)))

    # live updates: new hire, plans survive, answers refresh
    ddb.add_fact("manages", "tomas", "uma")
    updated = ddb.query("chain_of_command(maria, Y)")
    print()
    print(f"after hiring uma: {len(updated)} people under maria "
          f"(was {len(reports)})")


if __name__ == "__main__":
    main()
