#!/usr/bin/env python3
"""Quickstart: classify a recursive rule, compile a query, run it.

This walks the full pipeline of the paper on transitive closure (the
paper's statement (s1a)): build the I-graph, classify, read off the
compiled formula, and evaluate a selective query with all three
engines.

Run:  python examples/quickstart.py
"""

from repro import (CompiledEngine, Database, NaiveEngine, Query,
                   SemiNaiveEngine, ascii_figure, classify,
                   compile_query, parse_system)
from repro.engine import EvaluationStats


def main() -> None:
    # 1. The recursive formula (the paper's s1a) with an explicit exit.
    system = parse_system("""
        P(x, y) :- A(x, z), P(z, y).
        P(x, y) :- E(x, y).
    """)
    print("rule:", system.recursive)

    # 2. Its I-graph and classification.
    classification = classify(system)
    print()
    print(ascii_figure(classification.graph, "I-graph:"))
    print()
    print("classification:", classification.describe())
    print("strongly stable:", classification.is_strongly_stable)

    # 3. The compiled formula for the query form P(d, v).
    compiled = compile_query(system, "dv", classification)
    print()
    print("compiled formula for P(d, v):", compiled.plan_text)

    # 4. Evaluate P(n0, Y) over a small chain database.
    db = Database.from_dict({
        "A": [(f"n{i}", f"n{i + 1}") for i in range(10)],
        "E": [(f"n{i}", f"n{i}") for i in range(11)],
    })
    query = Query.parse("P(n0, Y)")
    print()
    print(f"query {query} over a 10-edge chain:")
    for engine in (NaiveEngine(), SemiNaiveEngine(), CompiledEngine()):
        stats = EvaluationStats()
        answers = engine.evaluate(system, db, query, stats)
        print(f"  {stats.engine:10s} -> {len(answers):2d} answers, "
              f"{stats.probes:4d} index probes")

    answers = CompiledEngine().evaluate(system, db, query)
    reachable = sorted(row[1] for row in answers)
    print()
    print("nodes reachable from n0:", ", ".join(reachable))


if __name__ == "__main__":
    main()
