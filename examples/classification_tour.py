#!/usr/bin/env python3
"""A tour of the paper's classification on every worked example.

Prints the classification table (the reproduction's "Table 1") and a
full dossier — I-graph, stability report, compiled plans — for one
representative formula of each class.

Run:  python examples/classification_tour.py
"""

from repro import classification_table, formula_dossier
from repro.workloads import CATALOGUE, paper_systems

REPRESENTATIVES = {
    "A1 (stable)": ("s3", ("ddv",)),
    "A3 (transformable)": ("s4", ("ddv",)),
    "A4 (permutational, bounded)": ("s5", ("dvv",)),
    "B (bounded cycle)": ("s8", ("dvvv",)),
    "C (unbounded cycle)": ("s9", ("dvv", "vvd")),
    "D (no non-trivial cycle)": ("s10", ("vv",)),
    "E (dependent cycles)": ("s11", ("dv",)),
    "F (mixed)": ("s12", ("dvv",)),
}


def main() -> None:
    print("Classification of the paper's examples "
          "(sections 3-10):")
    print()
    print(classification_table(paper_systems()))

    for label, (name, forms) in REPRESENTATIVES.items():
        print()
        print("=" * 72)
        print(f"class {label}")
        print("=" * 72)
        print(formula_dossier(name, CATALOGUE[name].system(),
                              query_forms=forms))


if __name__ == "__main__":
    main()
