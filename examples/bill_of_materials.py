#!/usr/bin/env python3
"""Bill of materials: parts explosion with a bounded side-constraint.

Demonstrates two things on a manufacturing database:

* the parts-explosion recursion (``contains``) — a stable class A
  formula whose compiled evaluation walks only the queried assembly;
* a *bounded* quality-audit rule shaped like the paper's (s8) — the
  classifier proves it pseudo recursion, so it is evaluated as a fixed
  finite union with no fixpoint at all.

Run:  python examples/bill_of_materials.py
"""

from repro import (Boundedness, CompiledEngine, Database, Query,
                   classify, parse_system, to_nonrecursive)
from repro.engine import EvaluationStats, SemiNaiveEngine

SUBPART = [
    ("bike", "frame"), ("bike", "wheel"), ("bike", "drivetrain"),
    ("wheel", "rim"), ("wheel", "spoke"), ("wheel", "hub"),
    ("drivetrain", "chain"), ("drivetrain", "crank"),
    ("crank", "arm"), ("crank", "bolt"),
    ("frame", "tube"), ("frame", "weld"),
]


def parts_explosion() -> None:
    system = parse_system("""
        contains(x, y) :- subpart(x, z), contains(z, y).
        contains(x, y) :- subpart(x, y).
    """)
    result = classify(system)
    print("parts explosion:", result.describe(),
          f"(stable: {result.is_strongly_stable})")

    db = Database.from_dict({"subpart": SUBPART})
    compiled, semi = EvaluationStats(), EvaluationStats()
    query = Query.parse("contains(wheel, Y)")
    answers = CompiledEngine().evaluate(system, db, query, compiled)
    check = SemiNaiveEngine().evaluate(system, db, query, semi)
    assert answers == check
    parts = sorted(row[1] for row in answers)
    print(f"  wheel transitively contains: {', '.join(parts)}")
    print(f"  probes: compiled {compiled.probes} "
          f"(vs semi-naive {semi.probes})")


def bounded_audit() -> None:
    """An (s8)-shaped rule: the audit trail provably cannot recurse
    more than twice, so the engine flattens it."""
    system = parse_system("""
        audit(x, y, z, u) :- checked(x, y), batch(y1, u),
                             lot(z1, u1), audit(z, y1, z1, u1).
        audit(x, y, z, u) :- seed(x, y, z, u).
    """)
    result = classify(system)
    print()
    print("audit rule:", result.describe())
    assert result.boundedness is Boundedness.BOUNDED
    print(f"  bounded with rank ≤ {result.rank_bound} "
          f"(pseudo recursion)")
    flattened = to_nonrecursive(system)
    print(f"  equivalent to {len(flattened)} non-recursive rules:")
    for rule in flattened:
        print(f"    {rule}")

    db = Database.from_dict({
        "checked": [("p1", "q1"), ("p2", "q2")],
        "batch": [("q1", "b1"), ("q9", "b2")],
        "lot": [("l1", "m1"), ("l2", "m2")],
        "seed": [("p9", "q1", "l1", "m1")],
    })
    stats = EvaluationStats()
    answers = CompiledEngine().evaluate(
        system, db, Query.all_free("audit", 4), stats)
    assert answers == SemiNaiveEngine().evaluate(system, db)
    print(f"  {len(answers)} audit tuples, {stats.rounds} evaluation "
          f"steps, no fixpoint")


if __name__ == "__main__":
    parts_explosion()
    bounded_audit()
